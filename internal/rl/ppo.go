package rl

import (
	"fmt"
	"math"
	"math/rand"

	"mocc/internal/nn"
)

// PPOConfig holds the Proximal Policy Optimization hyperparameters; the
// defaults follow Table 2 and §5 of the paper (and stable-baselines, which
// the authors built on).
type PPOConfig struct {
	// Gamma is the reward discount factor (Table 2: 0.99).
	Gamma float64
	// ClipEps is the surrogate clipping threshold ε (§5: 0.2).
	ClipEps float64
	// LR is the Adam learning rate (Table 2: 0.001).
	LR float64
	// EntropyInit/EntropyFinal/EntropyDecayIters implement the paper's β
	// schedule: decay from 1 to 0.1 over 1000 iterations (§5).
	EntropyInit       float64
	EntropyFinal      float64
	EntropyDecayIters int
	// Epochs is the number of passes over each rollout per update.
	Epochs int
	// MinibatchSize splits the rollout for gradient steps.
	MinibatchSize int
	// ValueCoef scales the critic loss.
	ValueCoef float64
	// MaxGradNorm clips the global gradient norm per minibatch.
	MaxGradNorm float64
	// Seed drives minibatch shuffling.
	Seed int64
}

// DefaultPPOConfig returns the paper's hyperparameters.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Gamma:             0.99,
		ClipEps:           0.2,
		LR:                0.001,
		EntropyInit:       1.0,
		EntropyFinal:      0.1,
		EntropyDecayIters: 1000,
		Epochs:            4,
		MinibatchSize:     64,
		ValueCoef:         0.5,
		MaxGradNorm:       0.5,
		Seed:              1,
	}
}

// UpdateStats reports diagnostics from one PPO update.
type UpdateStats struct {
	PolicyLoss   float64
	ValueLoss    float64
	Entropy      float64
	ClipFraction float64
	Beta         float64 // entropy coefficient used
	MeanReward   float64 // from the rollout(s)
}

// PPO trains an ActorCritic with the clipped surrogate objective
// (Equations 3-5). When the agent implements BatchActorCritic, each
// minibatch runs as one batched forward/backward through the actor and
// critic over reusable scratch buffers; otherwise a per-sample fallback
// path (the original implementation) is used.
type PPO struct {
	Agent     ActorCritic
	Cfg       PPOConfig
	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	rng       *rand.Rand
	iter      int

	// Minibatch scratch, grown on demand and reused across updates.
	idx     []int
	obsBuf  []float64 // [n x ObsSize] gathered observations
	actBuf  []float64 // actions
	oldLp   []float64 // behavior-policy log-probs
	advBuf  []float64 // advantages
	retBuf  []float64 // returns
	lpBuf   []float64 // current-policy log-probs
	gmBuf   []float64 // dlogpi/dmean
	gsBuf   []float64 // dlogpi/dlogstd
	dMean   []float64 // policy-mean loss gradients
	dLogStd []float64 // log-std loss gradients
	dV      []float64 // critic loss gradients
}

// NewPPO builds a trainer around the agent.
func NewPPO(agent ActorCritic, cfg PPOConfig) *PPO {
	return &PPO{
		Agent:     agent,
		Cfg:       cfg,
		actorOpt:  nn.NewAdam(agent.ActorParams(), cfg.LR),
		criticOpt: nn.NewAdam(agent.CriticParams(), cfg.LR),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Iter returns the number of PPO updates applied.
func (p *PPO) Iter() int { return p.iter }

// SetIter overrides the iteration counter (used when resuming a transferred
// model so the entropy schedule continues from the right point).
func (p *PPO) SetIter(i int) { p.iter = i }

// ResetOptimizers clears Adam state, e.g. after transferring weights to a
// new objective so stale momentum does not leak across tasks.
func (p *PPO) ResetOptimizers() {
	p.actorOpt.Reset()
	p.criticOpt.Reset()
}

// Beta returns the entropy coefficient for the current iteration, following
// the paper's 1 -> 0.1 decay over 1000 iterations.
func (p *PPO) Beta() float64 {
	c := p.Cfg
	if c.EntropyDecayIters <= 0 {
		return c.EntropyFinal
	}
	frac := float64(p.iter) / float64(c.EntropyDecayIters)
	if frac > 1 {
		frac = 1
	}
	return c.EntropyInit + (c.EntropyFinal-c.EntropyInit)*frac
}

// Update performs one PPO iteration on a single rollout.
func (p *PPO) Update(ro Rollout) UpdateStats {
	return p.UpdateMulti([]Rollout{ro})
}

// UpdateMulti performs one PPO iteration over several rollouts jointly,
// averaging their losses — this is the requirement-replay objective of
// Equation 6 when called with the new-objective and replayed-objective
// rollouts.
func (p *PPO) UpdateMulti(rollouts []Rollout) UpdateStats {
	var all []Transition
	var rewardSum float64
	for _, ro := range rollouts {
		ro.ComputeReturns(p.Cfg.Gamma)
		all = append(all, ro.Trans...)
		rewardSum += ro.MeanReward
	}
	if len(all) == 0 {
		return UpdateStats{}
	}
	beta := p.Beta()
	stats := UpdateStats{Beta: beta, MeanReward: rewardSum / float64(len(rollouts))}

	if cap(p.idx) < len(all) {
		p.idx = make([]int, len(all))
	}
	idx := p.idx[:len(all)]
	for i := range idx {
		idx[i] = i
	}

	mb := p.Cfg.MinibatchSize
	if mb <= 0 || mb > len(all) {
		mb = len(all)
	}

	batched, _ := p.Agent.(BatchActorCritic)

	var lossCount, clipCount, sampleCount float64
	for epoch := 0; epoch < max(p.Cfg.Epochs, 1); epoch++ {
		p.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += mb {
			end := start + mb
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]

			nn.ZeroGrad(p.Agent.ActorParams())
			nn.ZeroGrad(p.Agent.CriticParams())

			if batched != nil {
				p.minibatchBatched(batched, all, batch, beta, &stats, &lossCount, &clipCount, &sampleCount)
			} else {
				p.minibatchSerial(all, batch, beta, &stats, &lossCount, &clipCount, &sampleCount)
			}

			if p.Cfg.MaxGradNorm > 0 {
				nn.ClipGradNorm(p.Agent.ActorParams(), p.Cfg.MaxGradNorm)
				nn.ClipGradNorm(p.Agent.CriticParams(), p.Cfg.MaxGradNorm)
			}
			p.actorOpt.Step()
			p.criticOpt.Step()
		}
	}

	if lossCount > 0 {
		stats.PolicyLoss /= lossCount
		stats.ValueLoss /= lossCount
		stats.Entropy /= lossCount
	}
	if sampleCount > 0 {
		stats.ClipFraction = clipCount / sampleCount
	}
	p.iter++
	return stats
}

// minibatchBatched accumulates gradients for one minibatch with a single
// batched forward/backward through the actor and critic. It is
// gradient-equivalent to minibatchSerial: samples are processed in the same
// order, though the blocked kernels associate floating-point sums
// differently, so gradients match the serial path to tight tolerance
// (~1e-9, pinned by the batch equivalence tests) rather than bitwise.
func (p *PPO) minibatchBatched(agent BatchActorCritic, all []Transition, batch []int, beta float64,
	stats *UpdateStats, lossCount, clipCount, sampleCount *float64) {
	n := len(batch)
	fn := float64(n)
	obsDim := p.Agent.ObsSize()

	p.obsBuf = nn.Grow(p.obsBuf, n*obsDim)
	p.actBuf = nn.Grow(p.actBuf, n)
	p.oldLp = nn.Grow(p.oldLp, n)
	p.advBuf = nn.Grow(p.advBuf, n)
	p.retBuf = nn.Grow(p.retBuf, n)
	p.lpBuf = nn.Grow(p.lpBuf, n)
	p.gmBuf = nn.Grow(p.gmBuf, n)
	p.gsBuf = nn.Grow(p.gsBuf, n)
	p.dMean = nn.Grow(p.dMean, n)
	p.dLogStd = nn.Grow(p.dLogStd, n)
	p.dV = nn.Grow(p.dV, n)

	for k, i := range batch {
		tr := all[i]
		if len(tr.Obs) != obsDim {
			panic(fmt.Sprintf("rl: transition observation length %d, agent expects %d", len(tr.Obs), obsDim))
		}
		copy(p.obsBuf[k*obsDim:(k+1)*obsDim], tr.Obs)
		p.actBuf[k] = tr.Action
		p.oldLp[k] = tr.LogProb
		p.advBuf[k] = tr.Advantage
		p.retBuf[k] = tr.Return
	}

	means, std := agent.PolicyForwardBatch(p.obsBuf, n)
	nn.GaussianLogProbVec(p.lpBuf, p.actBuf, means, std)
	nn.GaussianLogProbGradVec(p.gmBuf, p.gsBuf, p.actBuf, means, std)
	entropy := nn.GaussianEntropy(std)

	for k := 0; k < n; k++ {
		dMean, dLogStd, surr := p.policySample(p.lpBuf[k], p.oldLp[k], p.advBuf[k],
			p.gmBuf[k], p.gsBuf[k], beta, clipCount, sampleCount)
		p.dMean[k] = dMean / fn
		p.dLogStd[k] = dLogStd / fn
		stats.PolicyLoss += -surr
		stats.Entropy += entropy
	}
	agent.PolicyBackwardBatch(p.dMean, p.dLogStd)

	// Critic: 0.5·(V - R)².
	vs := agent.ValueForwardBatch(p.obsBuf, n)
	for k := 0; k < n; k++ {
		diff := vs[k] - p.retBuf[k]
		p.dV[k] = p.Cfg.ValueCoef * diff / fn
		stats.ValueLoss += 0.5 * diff * diff
		*lossCount++
	}
	agent.ValueBackwardBatch(p.dV)
}

// minibatchSerial is the per-sample fallback for agents without batched
// kernels; it shares the surrogate arithmetic with the batched path via
// policySample.
func (p *PPO) minibatchSerial(all []Transition, batch []int, beta float64,
	stats *UpdateStats, lossCount, clipCount, sampleCount *float64) {
	n := float64(len(batch))
	for _, i := range batch {
		tr := all[i]
		mean, std := p.Agent.PolicyForward(tr.Obs)
		logProb := nn.GaussianLogProb(tr.Action, mean, std)
		gm, gs := nn.GaussianLogProbGrad(tr.Action, mean, std)
		dMean, dLogStd, surr := p.policySample(logProb, tr.LogProb, tr.Advantage,
			gm, gs, beta, clipCount, sampleCount)
		p.Agent.PolicyBackward(dMean/n, dLogStd/n)
		stats.PolicyLoss += -surr
		stats.Entropy += nn.GaussianEntropy(std)

		// Critic: 0.5·(V - R)².
		v := p.Agent.ValueForward(tr.Obs)
		dv := p.Cfg.ValueCoef * (v - tr.Return)
		p.Agent.ValueBackward(dv / n)
		stats.ValueLoss += 0.5 * (v - tr.Return) * (v - tr.Return)
		*lossCount++
	}
}

// policySample computes one sample's clipped-surrogate loss gradient
// (Equations 3-5): the gradients of -min(r·A, clip(r)·A) - β·H with
// respect to the policy mean and log-std, plus the surrogate value for the
// loss statistics. It is the single source of the PPO arithmetic shared by
// the batched and per-sample paths.
func (p *PPO) policySample(logProb, oldLogProb, adv, gm, gs, beta float64,
	clipCount, sampleCount *float64) (dMean, dLogStd, surr float64) {
	ratio := math.Exp(logProb - oldLogProb)
	// Guard against numeric explosions on stale samples.
	if ratio > 20 {
		ratio = 20
	}

	clipped := ratio < 1-p.Cfg.ClipEps || ratio > 1+p.Cfg.ClipEps
	// Gradient of -min(r·A, clip(r)·A): zero when the clipped branch is
	// active AND it is the smaller one.
	useUnclipped := true
	if clipped {
		clipR := math.Max(1-p.Cfg.ClipEps, math.Min(1+p.Cfg.ClipEps, ratio))
		if clipR*adv < ratio*adv {
			useUnclipped = false
		}
		*clipCount++
	}
	*sampleCount++

	if useUnclipped {
		// d(-r·A)/dθ = -A·r·dlogπ/dθ.
		dMean = -adv * ratio * gm
		dLogStd = -adv * ratio * gs
	}
	// Entropy bonus: H = c + logStd, so d(-βH)/dlogStd = -β.
	dLogStd -= beta

	surr = math.Min(ratio*adv, math.Max(1-p.Cfg.ClipEps, math.Min(1+p.Cfg.ClipEps, ratio))*adv)
	return dMean, dLogStd, surr
}
