package rl

import (
	"math"
	"testing"
)

// serialOnly hides an agent's batched kernels so PPO takes the per-sample
// fallback path; the dynamic type only exposes the ActorCritic method set.
type serialOnly struct{ ActorCritic }

// paramsMaxDiff returns the largest absolute element-wise difference
// between two agents' full parameter sets.
func paramsMaxDiff(t *testing.T, a, b *PlainAgent) float64 {
	t.Helper()
	pa, pb := a.AllParams(), b.AllParams()
	if len(pa) != len(pb) {
		t.Fatalf("param count mismatch: %d vs %d", len(pa), len(pb))
	}
	var worst float64
	for i := range pa {
		for j := range pa[i].Value {
			if d := math.Abs(pa[i].Value[j] - pb[i].Value[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestBatchedPPOMatchesSerial is the load-bearing equivalence property:
// running PPO through the batched minibatch path must produce the same
// parameters as the per-sample path, within 1e-9, over several full
// update iterations on identically seeded agents and rollouts.
func TestBatchedPPOMatchesSerial(t *testing.T) {
	cfg := DefaultPPOConfig()
	collectCfg := CollectConfig{Steps: 128, EpisodeLen: 32}

	batchedAgent := NewPlainAgent(12, 7)
	serialAgent := NewPlainAgent(12, 7)
	ppoBatched := NewPPO(batchedAgent, cfg)
	ppoSerial := NewPPO(serialOnly{serialAgent}, cfg)

	for iter := 0; iter < 3; iter++ {
		seed := int64(100 + iter)
		roB := Collect(batchedAgent, testFactory, wThr, collectCfg, seed)
		roS := Collect(serialAgent, testFactory, wThr, collectCfg, seed)
		stB := ppoBatched.Update(roB)
		stS := ppoSerial.Update(roS)

		if d := paramsMaxDiff(t, batchedAgent, serialAgent); d > 1e-9 {
			t.Fatalf("iter %d: batched vs serial params diverge by %v", iter, d)
		}
		if math.Abs(stB.PolicyLoss-stS.PolicyLoss) > 1e-9 ||
			math.Abs(stB.ValueLoss-stS.ValueLoss) > 1e-9 ||
			math.Abs(stB.Entropy-stS.Entropy) > 1e-9 ||
			stB.ClipFraction != stS.ClipFraction {
			t.Fatalf("iter %d: stats diverge: batched %+v vs serial %+v", iter, stB, stS)
		}
	}
}

// TestBatchedPPOGradientsMatchSerial checks the accumulated gradients of a
// single minibatch (no optimizer step) rather than post-update parameters:
// one batched forward/backward must reproduce the per-sample loop's
// gradients within 1e-9.
func TestBatchedPPOGradientsMatchSerial(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.Epochs = 1
	cfg.MinibatchSize = 0 // one minibatch spanning the whole rollout
	cfg.MaxGradNorm = 0   // compare raw accumulated gradients
	cfg.LR = 0            // optimizer step becomes a no-op on parameters

	batchedAgent := NewPlainAgent(12, 11)
	serialAgent := NewPlainAgent(12, 11)
	collectCfg := CollectConfig{Steps: 64, EpisodeLen: 16}
	roB := Collect(batchedAgent, testFactory, wThr, collectCfg, 9)
	roS := Collect(serialAgent, testFactory, wThr, collectCfg, 9)

	NewPPO(batchedAgent, cfg).Update(roB)
	NewPPO(serialOnly{serialAgent}, cfg).Update(roS)

	pa, pb := batchedAgent.AllParams(), serialAgent.AllParams()
	for i := range pa {
		for j := range pa[i].Grad {
			if d := math.Abs(pa[i].Grad[j] - pb[i].Grad[j]); d > 1e-9 {
				t.Fatalf("gradient %s[%d] diverges by %v (batched %v, serial %v)",
					pa[i].Name, j, d, pa[i].Grad[j], pb[i].Grad[j])
			}
		}
	}
}

// TestBatchedTrainingDeterministic verifies that a short batched training
// run is bitwise-reproducible for a fixed seed.
func TestBatchedTrainingDeterministic(t *testing.T) {
	run := func() *PlainAgent {
		agent := NewPlainAgent(12, 5)
		ppo := NewPPO(agent, DefaultPPOConfig())
		for iter := 0; iter < 3; iter++ {
			ro := Collect(agent, testFactory, wThr,
				CollectConfig{Steps: 128, EpisodeLen: 32}, int64(200+iter))
			ppo.Update(ro)
		}
		return agent
	}
	a, b := run(), run()
	pa, pb := a.AllParams(), b.AllParams()
	for i := range pa {
		for j := range pa[i].Value {
			if pa[i].Value[j] != pb[i].Value[j] {
				t.Fatalf("training not bitwise deterministic: %s[%d] %v vs %v",
					pa[i].Name, j, pa[i].Value[j], pb[i].Value[j])
			}
		}
	}
}

// TestPlainAgentBatchMatchesSingle checks the agent-level batched kernels
// against repeated single-sample calls.
func TestPlainAgentBatchMatchesSingle(t *testing.T) {
	const obsLen, n = 12, 7
	a := NewPlainAgent(obsLen, 3)
	ro := Collect(a, testFactory, wThr, CollectConfig{Steps: n, EpisodeLen: 4}, 17)

	obs := make([]float64, n*obsLen)
	for k, tr := range ro.Trans {
		copy(obs[k*obsLen:], tr.Obs)
	}
	means, std := a.PolicyForwardBatch(obs, n)
	meansCopy := append([]float64(nil), means...)
	vs := a.ValueForwardBatch(obs, n)
	vsCopy := append([]float64(nil), vs...)

	for k, tr := range ro.Trans {
		m1, s1 := a.PolicyForward(tr.Obs)
		if math.Abs(m1-meansCopy[k]) > 1e-9 || s1 != std {
			t.Errorf("sample %d: batched mean/std (%v, %v) vs single (%v, %v)",
				k, meansCopy[k], std, m1, s1)
		}
		if v1 := a.ValueForward(tr.Obs); math.Abs(v1-vsCopy[k]) > 1e-9 {
			t.Errorf("sample %d: batched value %v vs single %v", k, vsCopy[k], v1)
		}
	}
}
