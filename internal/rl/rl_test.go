package rl

import (
	"math"
	"math/rand"
	"testing"

	"mocc/internal/gym"
	"mocc/internal/objective"
	"mocc/internal/trace"
)

// testFactory creates environments on a clean 1000 pkts/s, 20 ms link with
// per-seed randomized start rates.
func testFactory(seed int64) *gym.Env {
	return gym.New(gym.Config{
		Bandwidth:  trace.Constant(1000),
		LatencyMs:  20,
		QueuePkts:  100,
		HistoryLen: 4,
		Seed:       seed,
	})
}

var wThr = objective.Weights{Thr: 0.8, Lat: 0.1, Loss: 0.1}

func TestComputeReturnsDiscounting(t *testing.T) {
	ro := Rollout{Trans: []Transition{
		{Reward: 1}, {Reward: 1}, {Reward: 1, Done: true}, {Reward: 2},
	}}
	ro.ComputeReturns(0.5)
	// Episode 1: returns 1+0.5(1+0.5*1)=1.75, 1.5, 1. Episode 2: 2.
	want := []float64{1.75, 1.5, 1, 2}
	for i, tr := range ro.Trans {
		if math.Abs(tr.Return-want[i]) > 1e-12 {
			t.Errorf("return[%d] = %v, want %v", i, tr.Return, want[i])
		}
	}
}

func TestComputeReturnsNormalizesAdvantages(t *testing.T) {
	ro := Rollout{Trans: []Transition{
		{Reward: 1, Value: 0}, {Reward: 5, Value: 1}, {Reward: -3, Value: 2}, {Reward: 0, Value: -1},
	}}
	ro.ComputeReturns(0.9)
	var sum, sumSq float64
	for _, tr := range ro.Trans {
		sum += tr.Advantage
		sumSq += tr.Advantage * tr.Advantage
	}
	n := float64(len(ro.Trans))
	if math.Abs(sum/n) > 1e-9 {
		t.Errorf("advantage mean = %v, want 0", sum/n)
	}
	if math.Abs(sumSq/n-1) > 1e-6 {
		t.Errorf("advantage variance = %v, want 1", sumSq/n)
	}
}

func TestComputeReturnsEmpty(t *testing.T) {
	var ro Rollout
	ro.ComputeReturns(0.99) // must not panic
}

func TestPlainAgentShapes(t *testing.T) {
	a := NewPlainAgent(12, 1)
	if a.ObsSize() != 12 {
		t.Errorf("ObsSize = %d", a.ObsSize())
	}
	obs := make([]float64, 12)
	mean, std := a.PolicyForward(obs)
	if math.IsNaN(mean) || std <= 0 {
		t.Errorf("bad policy output: mean %v std %v", mean, std)
	}
	if v := a.ValueForward(obs); math.IsNaN(v) {
		t.Errorf("bad value: %v", v)
	}
	// logStd starts at 0 -> std = 1.
	if math.Abs(std-1) > 1e-12 {
		t.Errorf("initial std = %v, want 1", std)
	}
}

func TestPlainAgentCopyFrom(t *testing.T) {
	a := NewPlainAgent(6, 1)
	b := NewPlainAgent(6, 99)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	obs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	ma, _ := a.PolicyForward(obs)
	mb, _ := b.PolicyForward(obs)
	if ma != mb {
		t.Errorf("policies differ after CopyFrom: %v vs %v", ma, mb)
	}
	if va, vb := a.ValueForward(obs), b.ValueForward(obs); va != vb {
		t.Errorf("critics differ after CopyFrom: %v vs %v", va, vb)
	}
}

func TestCollectShapesAndDeterminism(t *testing.T) {
	agent := NewPlainAgent(12, 1)
	cfg := CollectConfig{Steps: 50, EpisodeLen: 20}
	a := Collect(agent, testFactory, wThr, cfg, 7)
	if len(a.Trans) != 50 {
		t.Fatalf("collected %d, want 50", len(a.Trans))
	}
	for i, tr := range a.Trans {
		if len(tr.Obs) != 12 {
			t.Fatalf("obs %d has len %d", i, len(tr.Obs))
		}
		if math.IsNaN(tr.Reward) || tr.Reward < 0 || tr.Reward > 1 {
			t.Fatalf("reward %d = %v outside [0,1]", i, tr.Reward)
		}
	}
	// Episode boundaries every 20 steps.
	if !a.Trans[19].Done || !a.Trans[39].Done {
		t.Error("episode boundaries not marked")
	}
	if a.Trans[10].Done {
		t.Error("spurious episode boundary")
	}
	b := Collect(agent, testFactory, wThr, cfg, 7)
	for i := range a.Trans {
		if a.Trans[i].Action != b.Trans[i].Action || a.Trans[i].Reward != b.Trans[i].Reward {
			t.Fatalf("collection not deterministic at %d", i)
		}
	}
}

func TestCollectIncludeWeights(t *testing.T) {
	agent := NewPlainAgent(15, 1)
	ro := Collect(agent, testFactory, wThr, CollectConfig{Steps: 5, IncludeWeights: true}, 1)
	obs := ro.Trans[0].Obs
	if len(obs) != 15 {
		t.Fatalf("obs len = %d, want 15", len(obs))
	}
	if obs[12] != 0.8 || obs[13] != 0.1 || obs[14] != 0.1 {
		t.Errorf("weights not appended: %v", obs[12:])
	}
}

func TestPPOBetaSchedule(t *testing.T) {
	agent := NewPlainAgent(12, 1)
	cfg := DefaultPPOConfig()
	p := NewPPO(agent, cfg)
	if b := p.Beta(); math.Abs(b-1.0) > 1e-9 {
		t.Errorf("initial beta = %v, want 1", b)
	}
	p.SetIter(500)
	if b := p.Beta(); math.Abs(b-0.55) > 1e-9 {
		t.Errorf("midpoint beta = %v, want 0.55", b)
	}
	p.SetIter(2000)
	if b := p.Beta(); math.Abs(b-0.1) > 1e-9 {
		t.Errorf("final beta = %v, want 0.1", b)
	}
}

// TestPPOLearnsThroughputObjective is the core learning smoke test: a few
// PPO iterations on a clean link must substantially improve the
// throughput-weighted reward over the untrained policy.
func TestPPOLearnsThroughputObjective(t *testing.T) {
	agent := NewPlainAgent(12, 1)
	cfg := DefaultPPOConfig()
	cfg.EntropyInit = 0.02 // small task: keep exploration noise modest
	cfg.EntropyFinal = 0.001
	cfg.EntropyDecayIters = 30
	ppo := NewPPO(agent, cfg)

	evalEnv := testFactory(12345)
	before := EvaluateActor(agent.Act, evalEnv, wThr, false, 200)

	collectCfg := CollectConfig{Steps: 512, EpisodeLen: 64}
	for iter := 0; iter < 40; iter++ {
		ro := Collect(agent, testFactory, wThr, collectCfg, int64(1000+iter))
		ppo.Update(ro)
	}

	after := EvaluateActor(agent.Act, evalEnv, wThr, false, 200)
	if after < before+0.05 {
		t.Errorf("PPO did not learn: reward %v -> %v", before, after)
	}
	if after < 0.5 {
		t.Errorf("trained reward %v too low for a clean link", after)
	}
}

func TestPPOUpdateStatsSane(t *testing.T) {
	agent := NewPlainAgent(12, 2)
	ppo := NewPPO(agent, DefaultPPOConfig())
	ro := Collect(agent, testFactory, wThr, CollectConfig{Steps: 128, EpisodeLen: 32}, 5)
	st := ppo.Update(ro)
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) || math.IsNaN(st.Entropy) {
		t.Errorf("NaN stats: %+v", st)
	}
	if st.ClipFraction < 0 || st.ClipFraction > 1 {
		t.Errorf("clip fraction = %v", st.ClipFraction)
	}
	if st.MeanReward <= 0 {
		t.Errorf("mean reward = %v", st.MeanReward)
	}
	if ppo.Iter() != 1 {
		t.Errorf("Iter = %d, want 1", ppo.Iter())
	}
}

func TestPPOUpdateMultiAveragesObjectives(t *testing.T) {
	// Equation 6: a joint update over two objectives must run and keep
	// parameters finite.
	agent := NewPlainAgent(15, 3)
	ppo := NewPPO(agent, DefaultPPOConfig())
	wLat := objective.Weights{Thr: 0.1, Lat: 0.8, Loss: 0.1}
	cfg := CollectConfig{Steps: 64, EpisodeLen: 32, IncludeWeights: true}
	r1 := Collect(agent, testFactory, wThr, cfg, 1)
	r2 := Collect(agent, testFactory, wLat, cfg, 2)
	st := ppo.UpdateMulti([]Rollout{r1, r2})
	if math.IsNaN(st.PolicyLoss) {
		t.Error("NaN policy loss")
	}
	for _, p := range agent.ActorParams() {
		for _, v := range p.Value {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite parameter after UpdateMulti")
			}
		}
	}
}

func TestPPOEmptyUpdate(t *testing.T) {
	agent := NewPlainAgent(12, 1)
	ppo := NewPPO(agent, DefaultPPOConfig())
	st := ppo.UpdateMulti(nil)
	if st.PolicyLoss != 0 {
		t.Errorf("empty update stats: %+v", st)
	}
}

func TestParallelCollectorMatchesSerial(t *testing.T) {
	master := NewPlainAgent(12, 1)
	pc := NewParallelCollector(4, func() ActorCritic { return NewPlainAgent(12, 0) })
	if pc.Workers() != 4 {
		t.Fatalf("Workers = %d", pc.Workers())
	}
	cfg := CollectConfig{Steps: 40, EpisodeLen: 20}
	tasks := []CollectTask{
		{Weights: wThr, Seed: 11},
		{Weights: wThr, Seed: 22},
		{Weights: wThr, Seed: 33},
		{Weights: wThr, Seed: 44},
		{Weights: wThr, Seed: 55},
	}
	got, err := pc.Collect(master, testFactory, cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tasks) {
		t.Fatalf("got %d rollouts", len(got))
	}
	for i, task := range tasks {
		want := Collect(master, testFactory, task.Weights, cfg, task.Seed)
		for j := range want.Trans {
			if got[i].Trans[j].Action != want.Trans[j].Action {
				t.Fatalf("task %d step %d: parallel %v vs serial %v",
					i, j, got[i].Trans[j].Action, want.Trans[j].Action)
			}
		}
	}
}

func TestReplayBuffer(t *testing.T) {
	b := NewReplayBuffer(3)
	if b.Len() != 0 {
		t.Error("fresh buffer not empty")
	}
	for i := 0; i < 5; i++ {
		b.Add(dqnSample{reward: float64(i)})
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3 (capacity)", b.Len())
	}
	// Oldest entries evicted: rewards {2,3,4} remain.
	rng := rand.New(rand.NewSource(1))
	for _, s := range b.Sample(rng, 50) {
		if s.reward < 2 || s.reward > 4 {
			t.Fatalf("sampled evicted entry: reward %v", s.reward)
		}
	}
}

func TestDQNActionGrid(t *testing.T) {
	cfg := DefaultDQNConfig()
	cfg.Actions = 5
	cfg.MaxAction = 2
	a := NewDQNAgent(12, cfg)
	want := []float64{-2, -1, 0, 1, 2}
	got := a.Actions()
	if len(got) != len(want) {
		t.Fatalf("actions = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("action[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDQNEpsilonDecay(t *testing.T) {
	cfg := DefaultDQNConfig()
	a := NewDQNAgent(12, cfg)
	if e := a.epsilon(); math.Abs(e-1.0) > 1e-9 {
		t.Errorf("initial epsilon = %v", e)
	}
	a.steps = cfg.EpsilonDecaySteps * 2
	if e := a.epsilon(); math.Abs(e-cfg.EpsilonEnd) > 1e-9 {
		t.Errorf("final epsilon = %v, want %v", e, cfg.EpsilonEnd)
	}
}

func TestDQNTrainsWithoutBlowup(t *testing.T) {
	cfg := DefaultDQNConfig()
	cfg.BufferSize = 2000
	cfg.EpsilonDecaySteps = 500
	a := NewDQNAgent(12, cfg)
	curve := a.TrainEpisodes(testFactory, wThr, false, 1200, 60)
	if len(curve) != 20 {
		t.Fatalf("episodes = %d, want 20", len(curve))
	}
	for i, r := range curve {
		if math.IsNaN(r) || r < 0 || r > 1 {
			t.Fatalf("episode %d reward %v out of range", i, r)
		}
	}
	// Greedy policy must produce finite actions within the grid.
	obs := make([]float64, 12)
	act := a.Act(obs)
	if act < -cfg.MaxAction || act > cfg.MaxAction {
		t.Errorf("greedy action %v outside grid", act)
	}
}

func TestEvaluateActorRange(t *testing.T) {
	env := testFactory(1)
	// A do-nothing actor still yields a reward in [0, 1].
	r := EvaluateActor(func([]float64) float64 { return 0 }, env, wThr, false, 100)
	if r < 0 || r > 1 {
		t.Errorf("reward %v outside [0,1]", r)
	}
}

func TestEvaluatePolicyAgreesWithEvaluateActor(t *testing.T) {
	agent := NewPlainAgent(12, 4)
	envA := testFactory(9)
	envB := testFactory(9)
	a := EvaluatePolicy(agent, envA, wThr, false, 100)
	b := EvaluateActor(agent.Act, envB, wThr, false, 100)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("EvaluatePolicy %v != EvaluateActor %v", a, b)
	}
}
