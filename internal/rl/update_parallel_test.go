package rl

import (
	"math"
	"testing"
)

// trainAgent runs iters collect+update iterations with the given worker
// count and returns the trained agent.
func trainAgent(t *testing.T, workers, iters int) *PlainAgent {
	t.Helper()
	cfg := DefaultPPOConfig()
	cfg.Workers = workers
	agent := NewPlainAgent(12, 7)
	ppo := NewPPO(agent, cfg)
	for i := 0; i < iters; i++ {
		ro := Collect(agent, testFactory, wThr,
			CollectConfig{Steps: 128, EpisodeLen: 32}, int64(500+i))
		ppo.Update(ro)
	}
	return agent
}

// assertParamsBitIdentical fails unless the two agents' parameters match
// bit for bit.
func assertParamsBitIdentical(t *testing.T, a, b *PlainAgent, label string) {
	t.Helper()
	pa, pb := a.AllParams(), b.AllParams()
	for i := range pa {
		for j := range pa[i].Value {
			if pa[i].Value[j] != pb[i].Value[j] {
				t.Fatalf("%s: %s[%d] differs: %v vs %v",
					label, pa[i].Name, j, pa[i].Value[j], pb[i].Value[j])
			}
		}
	}
}

// TestParallelUpdateW1BitIdenticalToSerial pins the W=1 guarantee: a PPO
// configured with one worker takes the exact serial engine path, so the
// trained parameters are bit-identical to the Workers=0 default.
func TestParallelUpdateW1BitIdenticalToSerial(t *testing.T) {
	serial := trainAgent(t, 0, 3)
	w1 := trainAgent(t, 1, 3)
	assertParamsBitIdentical(t, serial, w1, "W=1 vs serial")
}

// TestParallelUpdateDeterministic pins bit-determinism at a fixed worker
// count: two identically seeded W=4 runs must agree bit for bit, including
// a worker count that does not divide the minibatch evenly (W=3).
func TestParallelUpdateDeterministic(t *testing.T) {
	for _, w := range []int{2, 3, 4} {
		a := trainAgent(t, w, 3)
		b := trainAgent(t, w, 3)
		assertParamsBitIdentical(t, a, b, "repeat runs")
	}
}

// TestParallelUpdateMatchesSerialWithinTolerance: sharding only changes the
// association order of floating-point gradient sums, so W=4 training must
// track the serial engine to tight tolerance (it is NOT bit-identical —
// per-shard sums associate differently than one full-batch pass).
func TestParallelUpdateMatchesSerialWithinTolerance(t *testing.T) {
	serial := trainAgent(t, 0, 2)
	par := trainAgent(t, 4, 2)
	pa, pb := serial.AllParams(), par.AllParams()
	var worst float64
	for i := range pa {
		for j := range pa[i].Value {
			if d := math.Abs(pa[i].Value[j] - pb[i].Value[j]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-6 {
		t.Fatalf("W=4 diverges from serial engine by %v after 2 updates", worst)
	}
	if worst == 0 {
		t.Log("W=4 happened to be bit-identical to serial (unusual but not wrong)")
	}
}

// TestParallelUpdateMoreWorkersThanRows exercises empty shards: with more
// workers than minibatch rows some shards are empty, and the tail minibatch
// is smaller than the worker count.
func TestParallelUpdateMoreWorkersThanRows(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.Workers = 8
	cfg.MinibatchSize = 4
	agent := NewPlainAgent(12, 9)
	ppo := NewPPO(agent, cfg)
	ro := Collect(agent, testFactory, wThr, CollectConfig{Steps: 10, EpisodeLen: 5}, 3)
	st := ppo.Update(ro)
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) {
		t.Fatalf("non-finite losses: %+v", st)
	}
	for _, p := range agent.AllParams() {
		for _, v := range p.Value {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite parameter after empty-shard update")
			}
		}
	}
}

// TestPlainAgentTrainingReplica pins the replica contract at the agent
// level: shared values, private gradients.
func TestPlainAgentTrainingReplica(t *testing.T) {
	master := NewPlainAgent(12, 1)
	rep := master.TrainingReplica().(*PlainAgent)
	mp, rp := master.AllParams(), rep.AllParams()
	if len(mp) != len(rp) {
		t.Fatalf("param count %d vs %d", len(mp), len(rp))
	}
	for i := range mp {
		if &mp[i].Value[0] != &rp[i].Value[0] {
			t.Fatalf("param %s: replica does not share values", mp[i].Name)
		}
		if &mp[i].Grad[0] == &rp[i].Grad[0] {
			t.Fatalf("param %s: replica shares gradients", mp[i].Name)
		}
	}
}

// TestParallelUpdateStatsMatchSerial: the reduced statistics of a parallel
// update must agree with the serial engine's within floating-point
// reassociation tolerance.
func TestParallelUpdateStatsMatchSerial(t *testing.T) {
	run := func(workers int) UpdateStats {
		cfg := DefaultPPOConfig()
		cfg.Workers = workers
		agent := NewPlainAgent(12, 21)
		ppo := NewPPO(agent, cfg)
		ro := Collect(agent, testFactory, wThr, CollectConfig{Steps: 128, EpisodeLen: 32}, 77)
		return ppo.Update(ro)
	}
	s, p := run(0), run(4)
	if math.Abs(s.PolicyLoss-p.PolicyLoss) > 1e-9 ||
		math.Abs(s.ValueLoss-p.ValueLoss) > 1e-9 ||
		math.Abs(s.Entropy-p.Entropy) > 1e-9 ||
		s.ClipFraction != p.ClipFraction {
		t.Fatalf("stats diverge: serial %+v vs parallel %+v", s, p)
	}
}
