package rl

import (
	"math"
	"math/rand"

	"mocc/internal/nn"
)

// PlainAgent is the single-objective actor-critic of Aurora (Figure 2a): a
// 64x32 tanh MLP policy head producing the Gaussian action mean, a learnable
// state-independent log-std, and a critic of the same trunk shape. It has no
// preference input; MOCC's preference-sub-network model lives in
// internal/core.
type PlainAgent struct {
	actor  *nn.MLP
	critic *nn.MLP
	logStd *nn.Param
	obsLen int

	dMean1 [1]float64 // batch-of-1 gradient scratch
	dV1    [1]float64
}

// logStd bounds keep the exploration noise in a sane range.
const (
	minLogStd = -3.0
	maxLogStd = 1.0
)

// NewPlainAgent builds an agent for observations of length obsLen with the
// paper's hidden sizes (64, 32).
func NewPlainAgent(obsLen int, seed int64) *PlainAgent {
	rng := rand.New(rand.NewSource(seed))
	a := &PlainAgent{
		actor:  nn.NewMLP(rng, obsLen, 64, 32, 1),
		critic: nn.NewMLP(rng, obsLen, 64, 32, 1),
		logStd: &nn.Param{Name: "logstd", Value: []float64{0}, Grad: []float64{0}},
		obsLen: obsLen,
	}
	return a
}

// ObsSize implements ActorCritic.
func (a *PlainAgent) ObsSize() int { return a.obsLen }

// PolicyForward implements ActorCritic.
func (a *PlainAgent) PolicyForward(obs []float64) (mean, std float64) {
	mean = a.actor.Forward(obs)[0]
	ls := math.Max(minLogStd, math.Min(maxLogStd, a.logStd.Value[0]))
	return mean, math.Exp(ls)
}

// PolicyBackward implements ActorCritic.
func (a *PlainAgent) PolicyBackward(dMean, dLogStd float64) {
	a.dMean1[0] = dMean
	a.actor.Backward(a.dMean1[:])
	// No gradient through the clamp boundary.
	if ls := a.logStd.Value[0]; ls > minLogStd && ls < maxLogStd {
		a.logStd.Grad[0] += dLogStd
	}
}

// ValueForward implements ActorCritic.
func (a *PlainAgent) ValueForward(obs []float64) float64 {
	return a.critic.Forward(obs)[0]
}

// ValueBackward implements ActorCritic.
func (a *PlainAgent) ValueBackward(dV float64) {
	a.dV1[0] = dV
	a.critic.Backward(a.dV1[:])
}

// PolicyForwardBatch implements BatchActorCritic. The returned means alias
// the actor's output scratch (the head is 1-wide, so [n x 1] rows are the
// mean vector directly).
func (a *PlainAgent) PolicyForwardBatch(obs []float64, n int) ([]float64, float64) {
	means := a.actor.ForwardBatch(obs, n)
	ls := math.Max(minLogStd, math.Min(maxLogStd, a.logStd.Value[0]))
	return means, math.Exp(ls)
}

// PolicyBackwardBatch implements BatchActorCritic.
func (a *PlainAgent) PolicyBackwardBatch(dMean, dLogStd []float64) {
	a.actor.BackwardBatch(dMean, len(dMean))
	if ls := a.logStd.Value[0]; ls > minLogStd && ls < maxLogStd {
		for _, g := range dLogStd {
			a.logStd.Grad[0] += g
		}
	}
}

// ValueForwardBatch implements BatchActorCritic.
func (a *PlainAgent) ValueForwardBatch(obs []float64, n int) []float64 {
	return a.critic.ForwardBatch(obs, n)
}

// ValueBackwardBatch implements BatchActorCritic.
func (a *PlainAgent) ValueBackwardBatch(dV []float64) {
	a.critic.BackwardBatch(dV, len(dV))
}

// ActorParams implements ActorCritic.
func (a *PlainAgent) ActorParams() []*nn.Param {
	return append(a.actor.Params(), a.logStd)
}

// CriticParams implements ActorCritic.
func (a *PlainAgent) CriticParams() []*nn.Param { return a.critic.Params() }

// Act returns the deterministic (mean) action for an observation; it
// satisfies the congestion-control Policy interface for deployment.
func (a *PlainAgent) Act(obs []float64) float64 {
	m, _ := a.PolicyForward(obs)
	return m
}

// AllParams returns actor and critic parameters for snapshotting.
func (a *PlainAgent) AllParams() []*nn.Param {
	return append(a.ActorParams(), a.CriticParams()...)
}

// CopyFrom copies all parameters from another PlainAgent of identical shape.
func (a *PlainAgent) CopyFrom(src *PlainAgent) error {
	return nn.CopyParams(a.AllParams(), src.AllParams())
}

// Clone returns an independent deep copy of the agent. Forward passes run in
// per-network scratch arenas, so a shared agent must not be evaluated from
// several goroutines; concurrent evaluation workers act on private clones
// instead.
func (a *PlainAgent) Clone() *PlainAgent {
	c := NewPlainAgent(a.obsLen, 0)
	if err := c.CopyFrom(a); err != nil {
		panic("rl: clone of identical architecture failed: " + err.Error())
	}
	return c
}

// TrainingReplica implements ReplicaAgent: the replica shares this agent's
// parameter values (it always evaluates the master's current weights, no
// copying) while owning private gradients and scratch, so the data-parallel
// PPO update can run several replicas' forward/backward concurrently.
func (a *PlainAgent) TrainingReplica() BatchActorCritic {
	return &PlainAgent{
		actor:  a.actor.Replica(),
		critic: a.critic.Replica(),
		logStd: a.logStd.TrainingReplica(),
		obsLen: a.obsLen,
	}
}
