package rl

import (
	"sync"
	"sync/atomic"

	"mocc/internal/nn"
	"mocc/internal/objective"
)

// Paramed is any model whose full parameter set can be copied, the minimal
// capability parallel collection needs to fan a master model out to worker
// replicas.
type Paramed interface {
	AllParams() []*nn.Param
}

// CollectTask describes one rollout request for parallel collection.
type CollectTask struct {
	Weights objective.Weights
	Seed    int64
	// Steps, when > 0, overrides CollectConfig.Steps for this task so a
	// rollout budget can be distributed exactly across an uneven fan-out.
	Steps int
}

// ParallelCollector gathers rollouts concurrently using per-worker replica
// agents, the goroutine equivalent of the paper's Ray/RLlib parallel
// environments (§5). Forward passes mutate layer scratch arenas, so workers
// never share a model; instead the master's parameters are copied into each
// replica by Sync before a collection round. Each worker's Collect writes
// its observations into a single per-rollout backing array, so a collection
// round performs O(tasks) allocations rather than O(steps).
//
// Sync and CollectSynced are split so a pipelined trainer can snapshot the
// master's parameters into the replicas, then run the collection round
// concurrently with an optimizer update that mutates the master.
type ParallelCollector struct {
	replicas []ActorCritic
}

// NewParallelCollector builds a collector with workers replicas created by
// factory (each must have the master's architecture).
func NewParallelCollector(workers int, factory func() ActorCritic) *ParallelCollector {
	if workers < 1 {
		workers = 1
	}
	pc := &ParallelCollector{replicas: make([]ActorCritic, workers)}
	for i := range pc.replicas {
		pc.replicas[i] = factory()
	}
	return pc
}

// Workers returns the replica count.
func (pc *ParallelCollector) Workers() int { return len(pc.replicas) }

// Sync copies the master's current parameters into every replica. After it
// returns, collection rounds no longer read the master, so the caller may
// mutate it (e.g. run a PPO update) concurrently with CollectSynced.
func (pc *ParallelCollector) Sync(master Paramed) error {
	masterParams := master.AllParams()
	for _, rep := range pc.replicas {
		repParamed, ok := rep.(Paramed)
		if !ok {
			continue
		}
		if err := nn.CopyParams(repParamed.AllParams(), masterParams); err != nil {
			return err
		}
	}
	return nil
}

// CollectSynced collects one rollout per task using the replicas' current
// (previously Synced) parameters. min(Workers, len(tasks)) goroutines pull
// task indices from a shared counter, so a fan-out smaller than the worker
// count runs on exactly that many goroutines instead of churning idle ones.
// Results are slotted by task index and every replica carries identical
// parameters, so the output is deterministic regardless of which replica
// runs which task.
func (pc *ParallelCollector) CollectSynced(envs EnvFactory, cfg CollectConfig, tasks []CollectTask) []Rollout {
	out := make([]Rollout, len(tasks))
	runTask := func(rep ActorCritic, i int) {
		c := cfg
		if tasks[i].Steps > 0 {
			c.Steps = tasks[i].Steps
		}
		out[i] = Collect(rep, envs, tasks[i].Weights, c, tasks[i].Seed)
	}

	workers := min(len(pc.replicas), len(tasks))
	if workers <= 1 {
		for i := range tasks {
			runTask(pc.replicas[0], i)
		}
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(rep ActorCritic) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				runTask(rep, i)
			}
		}(pc.replicas[w])
	}
	wg.Wait()
	return out
}

// Collect synchronizes every replica with master and then collects one
// rollout per task; it is Sync followed by CollectSynced. Results are
// returned in task order regardless of completion order, keeping training
// deterministic for a fixed seed set.
func (pc *ParallelCollector) Collect(master Paramed, envs EnvFactory, cfg CollectConfig, tasks []CollectTask) ([]Rollout, error) {
	if err := pc.Sync(master); err != nil {
		return nil, err
	}
	return pc.CollectSynced(envs, cfg, tasks), nil
}
