package rl

import (
	"sync"

	"mocc/internal/nn"
	"mocc/internal/objective"
)

// Paramed is any model whose full parameter set can be copied, the minimal
// capability parallel collection needs to fan a master model out to worker
// replicas.
type Paramed interface {
	AllParams() []*nn.Param
}

// CollectTask describes one rollout request for parallel collection.
type CollectTask struct {
	Weights objective.Weights
	Seed    int64
}

// ParallelCollector gathers rollouts concurrently using per-worker replica
// agents, the goroutine equivalent of the paper's Ray/RLlib parallel
// environments (§5). Forward passes mutate layer scratch arenas, so workers
// never share a model; instead the master's parameters are copied into each
// replica before every collection round. Each worker's Collect writes its
// observations into a single per-rollout backing array, so a collection
// round performs O(tasks) allocations rather than O(steps).
type ParallelCollector struct {
	replicas []ActorCritic
}

// NewParallelCollector builds a collector with workers replicas created by
// factory (each must have the master's architecture).
func NewParallelCollector(workers int, factory func() ActorCritic) *ParallelCollector {
	if workers < 1 {
		workers = 1
	}
	pc := &ParallelCollector{replicas: make([]ActorCritic, workers)}
	for i := range pc.replicas {
		pc.replicas[i] = factory()
	}
	return pc
}

// Workers returns the replica count.
func (pc *ParallelCollector) Workers() int { return len(pc.replicas) }

// Collect synchronizes every replica with master and then collects one
// rollout per task, running up to Workers() tasks concurrently. Results are
// returned in task order regardless of completion order, keeping training
// deterministic for a fixed seed set.
func (pc *ParallelCollector) Collect(master Paramed, envs EnvFactory, cfg CollectConfig, tasks []CollectTask) ([]Rollout, error) {
	masterParams := master.AllParams()
	for _, rep := range pc.replicas {
		repParamed, ok := rep.(Paramed)
		if !ok {
			continue
		}
		if err := nn.CopyParams(repParamed.AllParams(), masterParams); err != nil {
			return nil, err
		}
	}

	out := make([]Rollout, len(tasks))
	sem := make(chan int, len(pc.replicas))
	for i := range pc.replicas {
		sem <- i
	}
	var wg sync.WaitGroup
	for ti, task := range tasks {
		wg.Add(1)
		go func(ti int, task CollectTask) {
			defer wg.Done()
			worker := <-sem
			defer func() { sem <- worker }()
			out[ti] = Collect(pc.replicas[worker], envs, task.Weights, cfg, task.Seed)
		}(ti, task)
	}
	wg.Wait()
	return out, nil
}
