package rl

import (
	"fmt"
	"testing"
)

// benchRollout collects a fixed 512-step rollout once so PPO benchmarks
// measure update cost only. ComputeReturns is idempotent, so the same
// rollout can be re-updated every iteration.
func benchRollout(agent ActorCritic) Rollout {
	return Collect(agent, testFactory, wThr,
		CollectConfig{Steps: 512, EpisodeLen: 64}, 42)
}

func BenchmarkPPOUpdate(b *testing.B) {
	agent := NewPlainAgent(12, 1)
	ppo := NewPPO(agent, DefaultPPOConfig())
	ro := benchRollout(agent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ppo.Update(ro)
	}
}

// BenchmarkPPOUpdateSerial measures the per-sample fallback path (the
// pre-batching implementation) for the speedup comparison recorded in
// CHANGES.md.
func BenchmarkPPOUpdateSerial(b *testing.B) {
	agent := NewPlainAgent(12, 1)
	ppo := NewPPO(serialOnly{agent}, DefaultPPOConfig())
	ro := benchRollout(agent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ppo.Update(ro)
	}
}

// BenchmarkPPOUpdateParallel measures the data-parallel update engine at
// several worker counts on the same rollout as BenchmarkPPOUpdate. W=1
// takes the serial engine path (the bit-identity guarantee), so it must be
// flat against BenchmarkPPOUpdate; the ≥1.8x target at w4 needs a ≥4-core
// machine (on a 1-core container the barrier rounds serialize).
func BenchmarkPPOUpdateParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			cfg := DefaultPPOConfig()
			cfg.Workers = w
			agent := NewPlainAgent(12, 1)
			ppo := NewPPO(agent, cfg)
			ro := benchRollout(agent)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ppo.Update(ro)
			}
		})
	}
}

func BenchmarkCollect(b *testing.B) {
	agent := NewPlainAgent(12, 1)
	cfg := CollectConfig{Steps: 256, EpisodeLen: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Collect(agent, testFactory, wThr, cfg, int64(i))
	}
}
