package rl

import (
	"testing"
)

// benchRollout collects a fixed 512-step rollout once so PPO benchmarks
// measure update cost only. ComputeReturns is idempotent, so the same
// rollout can be re-updated every iteration.
func benchRollout(agent ActorCritic) Rollout {
	return Collect(agent, testFactory, wThr,
		CollectConfig{Steps: 512, EpisodeLen: 64}, 42)
}

func BenchmarkPPOUpdate(b *testing.B) {
	agent := NewPlainAgent(12, 1)
	ppo := NewPPO(agent, DefaultPPOConfig())
	ro := benchRollout(agent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ppo.Update(ro)
	}
}

// BenchmarkPPOUpdateSerial measures the per-sample fallback path (the
// pre-batching implementation) for the speedup comparison recorded in
// CHANGES.md.
func BenchmarkPPOUpdateSerial(b *testing.B) {
	agent := NewPlainAgent(12, 1)
	ppo := NewPPO(serialOnly{agent}, DefaultPPOConfig())
	ro := benchRollout(agent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ppo.Update(ro)
	}
}

func BenchmarkCollect(b *testing.B) {
	agent := NewPlainAgent(12, 1)
	cfg := CollectConfig{Steps: 256, EpisodeLen: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Collect(agent, testFactory, wThr, cfg, int64(i))
	}
}
