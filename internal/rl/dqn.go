package rl

import (
	"math"
	"math/rand"

	"mocc/internal/gym"
	"mocc/internal/nn"
	"mocc/internal/objective"
)

// DQNConfig holds Deep Q-Network hyperparameters for the MOCC-DQN ablation
// (Figure 18): the action space is discretized, which is exactly the
// handicap the paper demonstrates against continuous-action PPO.
type DQNConfig struct {
	// Actions is the number of discrete rate-change actions, spread
	// uniformly over [-MaxAction, MaxAction].
	Actions   int
	MaxAction float64
	Gamma     float64
	LR        float64
	// EpsilonStart/End/DecaySteps schedule epsilon-greedy exploration.
	EpsilonStart, EpsilonEnd float64
	EpsilonDecaySteps        int
	BufferSize               int
	BatchSize                int
	// TargetSync copies the online network to the target every N updates.
	TargetSync int
	// TrainEvery performs one gradient step per this many env steps.
	TrainEvery int
	Seed       int64
}

// DefaultDQNConfig returns reasonable DQN hyperparameters aligned with the
// PPO setup (same γ and learning rate).
func DefaultDQNConfig() DQNConfig {
	return DQNConfig{
		Actions:           11,
		MaxAction:         2,
		Gamma:             0.99,
		LR:                0.001,
		EpsilonStart:      1.0,
		EpsilonEnd:        0.05,
		EpsilonDecaySteps: 5000,
		BufferSize:        20000,
		BatchSize:         64,
		TargetSync:        200,
		TrainEvery:        4,
		Seed:              1,
	}
}

// dqnSample is one stored transition.
type dqnSample struct {
	obs     []float64
	action  int
	reward  float64
	nextObs []float64
	done    bool
}

// ReplayBuffer is a fixed-capacity ring buffer of transitions.
type ReplayBuffer struct {
	buf  []dqnSample
	next int
	full bool
}

// NewReplayBuffer creates a buffer holding up to capacity transitions.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &ReplayBuffer{buf: make([]dqnSample, capacity)}
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int {
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// Add stores a transition, evicting the oldest when full.
func (b *ReplayBuffer) Add(s dqnSample) {
	b.buf[b.next] = s
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
}

// Sample draws n transitions uniformly with replacement.
func (b *ReplayBuffer) Sample(rng *rand.Rand, n int) []dqnSample {
	out := make([]dqnSample, n)
	size := b.Len()
	for i := range out {
		out[i] = b.buf[rng.Intn(size)]
	}
	return out
}

// DQNAgent is a discrete-action Q-learning controller over the same
// observation space as the PPO agents.
type DQNAgent struct {
	cfg     DQNConfig
	online  *nn.MLP
	target  *nn.MLP
	opt     *nn.Adam
	rng     *rand.Rand
	buffer  *ReplayBuffer
	actions []float64 // discrete action values
	steps   int
	updates int
}

// NewDQNAgent builds a DQN over observations of length obsLen.
func NewDQNAgent(obsLen int, cfg DQNConfig) *DQNAgent {
	rng := rand.New(rand.NewSource(cfg.Seed))
	actions := make([]float64, cfg.Actions)
	for i := range actions {
		if cfg.Actions == 1 {
			actions[i] = 0
		} else {
			actions[i] = -cfg.MaxAction + 2*cfg.MaxAction*float64(i)/float64(cfg.Actions-1)
		}
	}
	a := &DQNAgent{
		cfg:     cfg,
		online:  nn.NewMLP(rng, obsLen, 64, 32, cfg.Actions),
		target:  nn.NewMLP(rng, obsLen, 64, 32, cfg.Actions),
		rng:     rng,
		buffer:  NewReplayBuffer(cfg.BufferSize),
		actions: actions,
	}
	a.opt = nn.NewAdam(a.online.Params(), cfg.LR)
	a.syncTarget()
	return a
}

// syncTarget copies online weights into the target network.
func (a *DQNAgent) syncTarget() {
	if err := nn.CopyParams(a.target.Params(), a.online.Params()); err != nil {
		panic("rl: dqn target architecture mismatch: " + err.Error())
	}
}

// Actions exposes the discrete action grid for tests.
func (a *DQNAgent) Actions() []float64 { return a.actions }

// epsilon returns the current exploration rate.
func (a *DQNAgent) epsilon() float64 {
	c := a.cfg
	if c.EpsilonDecaySteps <= 0 {
		return c.EpsilonEnd
	}
	frac := float64(a.steps) / float64(c.EpsilonDecaySteps)
	if frac > 1 {
		frac = 1
	}
	return c.EpsilonStart + (c.EpsilonEnd-c.EpsilonStart)*frac
}

// Act returns the greedy action value for obs (deployment interface).
func (a *DQNAgent) Act(obs []float64) float64 {
	q := a.online.Forward(obs)
	return a.actions[nn.Argmax(q)]
}

// selectAction is epsilon-greedy during training.
func (a *DQNAgent) selectAction(obs []float64) int {
	if a.rng.Float64() < a.epsilon() {
		return a.rng.Intn(len(a.actions))
	}
	return nn.Argmax(a.online.Forward(obs))
}

// trainStep performs one minibatch TD update and returns the mean TD loss.
func (a *DQNAgent) trainStep() float64 {
	if a.buffer.Len() < a.cfg.BatchSize {
		return 0
	}
	batch := a.buffer.Sample(a.rng, a.cfg.BatchSize)
	nn.ZeroGrad(a.online.Params())
	var loss float64
	for _, s := range batch {
		tq := a.target.Forward(s.nextObs)
		targetV := s.reward
		if !s.done {
			targetV += a.cfg.Gamma * tq[nn.Argmax(tq)]
		}
		q := a.online.Forward(s.obs)
		td := q[s.action] - targetV
		loss += 0.5 * td * td
		grad := make([]float64, len(q))
		grad[s.action] = td / float64(len(batch))
		a.online.Backward(grad)
	}
	nn.ClipGradNorm(a.online.Params(), 1)
	a.opt.Step()
	a.updates++
	if a.cfg.TargetSync > 0 && a.updates%a.cfg.TargetSync == 0 {
		a.syncTarget()
	}
	return loss / float64(a.cfg.BatchSize)
}

// TrainEpisodes runs DQN training for the given number of environment steps
// under objective w (weights embedded in observations when includeWeights),
// returning the per-episode mean rewards as a learning curve.
func (a *DQNAgent) TrainEpisodes(factory EnvFactory, w objective.Weights, includeWeights bool, totalSteps, episodeLen int) []float64 {
	var curve []float64
	env := factory(a.rng.Int63())
	epReward, epSteps := 0.0, 0

	obs := dqnObs(env, w, includeWeights)
	for step := 0; step < totalSteps; step++ {
		ai := a.selectAction(obs)
		env.ApplyAction(a.actions[ai])
		_, m := env.Step()
		oThr, oLat, oLoss := gym.RewardTerms(m)
		reward := w.Reward(oThr, oLat, oLoss)
		epReward += reward
		epSteps++

		done := episodeLen > 0 && epSteps >= episodeLen
		nextObs := dqnObs(env, w, includeWeights)
		a.buffer.Add(dqnSample{obs: obs, action: ai, reward: reward, nextObs: nextObs, done: done})
		obs = nextObs
		a.steps++

		if a.cfg.TrainEvery > 0 && a.steps%a.cfg.TrainEvery == 0 {
			a.trainStep()
		}

		if done {
			curve = append(curve, epReward/float64(epSteps))
			epReward, epSteps = 0, 0
			env = factory(a.rng.Int63())
			obs = dqnObs(env, w, includeWeights)
		}
	}
	return curve
}

// dqnObs mirrors buildObs for the DQN path.
func dqnObs(env *gym.Env, w objective.Weights, includeWeights bool) []float64 {
	obs := env.Observation()
	if includeWeights {
		obs = append(obs, w.Thr, w.Lat, w.Loss)
	}
	return obs
}

// EvaluateActor runs any deterministic actor (PPO mean policy, DQN greedy
// policy, or a learned MOCC policy) on an environment and returns the mean
// Equation 2 reward over steps intervals.
func EvaluateActor(act func(obs []float64) float64, env *gym.Env, w objective.Weights, includeWeights bool, steps int) float64 {
	env.Reset()
	var sum float64
	for i := 0; i < steps; i++ {
		obs := dqnObs(env, w, includeWeights)
		a := math.Max(-2, math.Min(2, act(obs)))
		env.ApplyAction(a)
		_, m := env.Step()
		oThr, oLat, oLoss := gym.RewardTerms(m)
		sum += w.Reward(oThr, oLat, oLoss)
	}
	return sum / float64(steps)
}
