// Package rl implements the reinforcement-learning substrate MOCC trains
// on: PPO with the clipped surrogate objective, entropy regularization and
// the Equation 4 advantage estimate; trajectory collection (serial and
// goroutine-parallel, replacing Ray/RLlib from the paper's stack §5); and a
// DQN implementation for the learning-algorithm ablation (Figure 18).
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"mocc/internal/gym"
	"mocc/internal/nn"
	"mocc/internal/objective"
)

// Transition is one (s, a, r) step of experience plus the quantities PPO
// needs for its surrogate objective.
type Transition struct {
	Obs       []float64 // observation fed to the policy (may embed weights)
	Action    float64
	LogProb   float64 // log π_old(a|s) at collection time
	Reward    float64
	Value     float64 // V(s) at collection time
	Done      bool    // episode boundary after this step
	Return    float64 // discounted return (filled by ComputeReturns)
	Advantage float64 // Return - Value, normalized (filled by ComputeReturns)
}

// Rollout is a batch of transitions, possibly spanning several episodes.
type Rollout struct {
	Trans []Transition
	// MeanReward is the average per-step reward, the learning-curve metric
	// used in Figures 1c and 7.
	MeanReward float64
}

// ComputeReturns fills discounted returns (Equation 4's empirical total
// reward) and advantages Return - Value, respecting episode boundaries, and
// then normalizes advantages to zero mean / unit variance across the batch
// (standard PPO practice for stable updates).
func (r *Rollout) ComputeReturns(gamma float64) {
	if len(r.Trans) == 0 {
		return
	}
	running := 0.0
	for i := len(r.Trans) - 1; i >= 0; i-- {
		if r.Trans[i].Done {
			running = 0
		}
		running = r.Trans[i].Reward + gamma*running
		r.Trans[i].Return = running
	}
	var sum, sumSq float64
	for i := range r.Trans {
		adv := r.Trans[i].Return - r.Trans[i].Value
		r.Trans[i].Advantage = adv
		sum += adv
		sumSq += adv * adv
	}
	n := float64(len(r.Trans))
	mean := sum / n
	std := math.Sqrt(math.Max(sumSq/n-mean*mean, 1e-12))
	for i := range r.Trans {
		r.Trans[i].Advantage = (r.Trans[i].Advantage - mean) / std
	}
}

// ActorCritic is the differentiable policy/value model PPO trains. The MOCC
// model (preference sub-network) and the plain Aurora model both implement
// it; observations arrive pre-assembled, so the trainer is agnostic to
// whether preferences are embedded.
type ActorCritic interface {
	// PolicyForward evaluates the Gaussian policy head for one
	// observation, returning the action mean and standard deviation.
	PolicyForward(obs []float64) (mean, std float64)
	// PolicyBackward backpropagates loss gradients with respect to the
	// policy mean and log-std through the network evaluated by the most
	// recent PolicyForward, accumulating parameter gradients.
	PolicyBackward(dMean, dLogStd float64)
	// ValueForward evaluates the critic for one observation.
	ValueForward(obs []float64) float64
	// ValueBackward backpropagates a loss gradient with respect to the
	// critic output from the most recent ValueForward.
	ValueBackward(dV float64)
	// ActorParams and CriticParams expose trainable parameters.
	ActorParams() []*nn.Param
	CriticParams() []*nn.Param
	// ObsSize is the expected observation length.
	ObsSize() int
}

// BatchActorCritic is an ActorCritic whose networks additionally evaluate
// and backpropagate whole minibatches at once over row-major [n x ObsSize]
// observation matrices. PPO uses it to replace its per-sample loop with one
// batched forward/backward per minibatch; agents that do not implement it
// fall back to the per-sample path.
//
// Returned slices alias agent-owned scratch and are valid until the next
// batched call on the same half-network.
type BatchActorCritic interface {
	ActorCritic
	// PolicyForwardBatch evaluates the Gaussian policy head for n
	// observations, returning the per-sample action means and the shared
	// (state-independent) standard deviation.
	PolicyForwardBatch(obs []float64, n int) (means []float64, std float64)
	// PolicyBackwardBatch backpropagates per-sample loss gradients with
	// respect to the policy means and log-std through the networks
	// evaluated by the most recent PolicyForwardBatch.
	PolicyBackwardBatch(dMean, dLogStd []float64)
	// ValueForwardBatch evaluates the critic for n observations.
	ValueForwardBatch(obs []float64, n int) []float64
	// ValueBackwardBatch backpropagates per-sample critic-output gradients
	// from the most recent ValueForwardBatch.
	ValueBackwardBatch(dV []float64)
}

// EnvFactory creates a fresh training environment for a given seed;
// implementations typically sample Table 3 conditions from the seed.
type EnvFactory func(seed int64) *gym.Env

// CollectConfig controls trajectory collection.
type CollectConfig struct {
	// Steps is the number of transitions to collect.
	Steps int
	// EpisodeLen resets (and re-samples) the environment every this many
	// steps; 0 means never reset mid-collection.
	EpisodeLen int
	// IncludeWeights appends the objective weight vector to each
	// observation (the MOCC state layout, §4.1). Aurora-style agents
	// leave it false.
	IncludeWeights bool
	// Deterministic uses the policy mean instead of sampling (evaluation).
	Deterministic bool
	// MaxAction clips sampled actions before they reach the environment.
	MaxAction float64
}

// fillObs assembles the model input from the environment observation and,
// optionally, the preference weights, writing into dst (which must have the
// exact observation length) so per-step collection reuses buffers instead
// of allocating.
func fillObs(dst []float64, env *gym.Env, w objective.Weights, includeWeights bool) {
	obs := env.ObservationInto(dst[:0])
	if includeWeights {
		obs = append(obs, w.Thr, w.Lat, w.Loss)
	}
	if len(obs) != len(dst) {
		panic(fmt.Sprintf("rl: observation length %d, agent expects %d", len(obs), len(dst)))
	}
}

// Collect runs the agent in environments from factory under objective w for
// cfg.Steps transitions and returns the rollout. The reward each step is
// Equation 2 evaluated with w. envSeed seeds both environment sampling and
// action sampling so collection is reproducible.
func Collect(agent ActorCritic, factory EnvFactory, w objective.Weights, cfg CollectConfig, envSeed int64) Rollout {
	if cfg.MaxAction <= 0 {
		cfg.MaxAction = 2
	}
	rng := rand.New(rand.NewSource(envSeed))
	env := factory(rng.Int63())
	ro := Rollout{Trans: make([]Transition, 0, cfg.Steps)}
	epSteps := 0
	var rewardSum float64

	// One backing array holds every observation of the rollout; each
	// transition's Obs is a slice into it, so collection performs a single
	// allocation instead of one per step.
	obsDim := agent.ObsSize()
	backing := make([]float64, cfg.Steps*obsDim)

	for len(ro.Trans) < cfg.Steps {
		obs := backing[len(ro.Trans)*obsDim : (len(ro.Trans)+1)*obsDim : (len(ro.Trans)+1)*obsDim]
		fillObs(obs, env, w, cfg.IncludeWeights)
		mean, std := agent.PolicyForward(obs)
		var action float64
		if cfg.Deterministic {
			action = mean
		} else {
			action = nn.GaussianSample(rng, mean, std)
		}
		clipped := math.Max(-cfg.MaxAction, math.Min(cfg.MaxAction, action))
		logProb := nn.GaussianLogProb(action, mean, std)
		value := agent.ValueForward(obs)

		env.ApplyAction(clipped)
		_, m := env.Step()
		oThr, oLat, oLoss := gym.RewardTerms(m)
		reward := w.Reward(oThr, oLat, oLoss)
		rewardSum += reward

		epSteps++
		done := false
		if cfg.EpisodeLen > 0 && epSteps >= cfg.EpisodeLen {
			done = true
			epSteps = 0
			env = factory(rng.Int63())
		} else if env.Done() {
			done = true
			epSteps = 0
			env = factory(rng.Int63())
		}

		ro.Trans = append(ro.Trans, Transition{
			Obs:     obs,
			Action:  action,
			LogProb: logProb,
			Reward:  reward,
			Value:   value,
			Done:    done,
		})
	}
	ro.MeanReward = rewardSum / float64(len(ro.Trans))
	return ro
}

// EvaluatePolicy runs the deterministic policy for steps MIs on one
// environment and returns the mean Equation 2 reward — the scalar used for
// the reward CDFs (Figures 6, 16, 18).
func EvaluatePolicy(agent ActorCritic, env *gym.Env, w objective.Weights, includeWeights bool, steps int) float64 {
	env.Reset()
	var sum float64
	obs := make([]float64, agent.ObsSize())
	for i := 0; i < steps; i++ {
		fillObs(obs, env, w, includeWeights)
		mean, _ := agent.PolicyForward(obs)
		a := math.Max(-2, math.Min(2, mean))
		env.ApplyAction(a)
		_, m := env.Step()
		oThr, oLat, oLoss := gym.RewardTerms(m)
		sum += w.Reward(oThr, oLat, oLoss)
	}
	return sum / float64(steps)
}
