package scenario

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"mocc/internal/cc"
	"mocc/internal/gym"
)

// tracesDir points at the repo-level shipped traces.
var tracesDir = filepath.Join("..", "..", "testdata", "traces")

// validSpec returns a minimal correct spec for mutation tests.
func validSpec() *Spec {
	return &Spec{
		Version:     SpecVersion,
		Name:        "t",
		DurationSec: 5,
		Link:        Link{RTTms: 40, QueuePkts: 100, CapacityMbps: 10},
		Flows:       []Flow{{Scheme: "cubic"}},
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Description = "round trip"
	s.Link.LossRate = 0.01
	s.Flows = append(s.Flows, Flow{
		Scheme: "mocc", Label: "late", StartSec: 1, StopSec: 4,
		Weights: &Weights{Throughput: 0.8, Latency: 0.1, Loss: 0.1},
		App:     &App{Kind: "bulk", FileMBytes: 1},
	})
	s.Cross = []Cross{{RateMbps: 2, OnOffSec: 0.5}}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse(JSON()): %v", err)
	}
	data2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("JSON round trip not stable:\n%s\nvs\n%s", data, data2)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"version":1,"name":"x","duration_sec":5,"link":{"rtt_ms":40,"capacity_mbps":10},"flows":[{"scheme":"cubic"}],"typo_field":1}`))
	if err == nil || !strings.Contains(err.Error(), "typo_field") {
		t.Fatalf("unknown field accepted, err=%v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"bad-version", func(s *Spec) { s.Version = SpecVersion + 1 }, "version"},
		{"no-name", func(s *Spec) { s.Name = "" }, "name"},
		{"no-duration", func(s *Spec) { s.DurationSec = 0 }, "duration"},
		{"no-flows", func(s *Spec) { s.Flows = nil }, "flow"},
		{"no-rtt", func(s *Spec) { s.Link.RTTms = 0 }, "rtt_ms"},
		{"bad-loss", func(s *Spec) { s.Link.LossRate = 1.5 }, "loss_rate"},
		{"no-capacity", func(s *Spec) { s.Link.CapacityMbps = 0 }, "exactly one"},
		{"two-capacity-sources", func(s *Spec) {
			s.Link.Schedule = []Level{{AtSec: 0, Mbps: 5}}
		}, "exactly one"},
		{"schedule-start", func(s *Spec) {
			s.Link.CapacityMbps = 0
			s.Link.Schedule = []Level{{AtSec: 1, Mbps: 5}}
		}, "at_sec 0"},
		{"schedule-inf-time", func(s *Spec) {
			s.Link.CapacityMbps = 0
			s.Link.Schedule = []Level{{AtSec: 0, Mbps: 0}, {AtSec: math.Inf(1), Mbps: 5}}
		}, "at_sec"},
		{"schedule-order", func(s *Spec) {
			s.Link.CapacityMbps = 0
			s.Link.Schedule = []Level{{AtSec: 0, Mbps: 5}, {AtSec: 2, Mbps: 6}, {AtSec: 2, Mbps: 7}}
		}, "strictly increasing"},
		{"loop-too-short", func(s *Spec) {
			s.Link.CapacityMbps = 0
			s.Link.Schedule = []Level{{AtSec: 0, Mbps: 5}, {AtSec: 2, Mbps: 6}}
			s.Link.ScheduleLoopSec = 2
		}, "schedule_loop_sec"},
		{"loop-without-schedule", func(s *Spec) { s.Link.ScheduleLoopSec = 3 }, "without a schedule"},
		{"bin-without-trace", func(s *Spec) { s.Link.TraceBinMs = 50 }, "without a trace_file"},
		{"no-scheme", func(s *Spec) { s.Flows[0].Scheme = "" }, "scheme"},
		{"fixed-without-rate", func(s *Spec) { s.Flows[0] = Flow{Scheme: "fixed"} }, "rate_mbps"},
		{"stop-before-start", func(s *Spec) { s.Flows[0].StartSec = 3; s.Flows[0].StopSec = 2 }, "stop_sec"},
		{"zero-weights", func(s *Spec) {
			s.Flows[0].Scheme = "mocc"
			s.Flows[0].Weights = &Weights{}
		}, "weights"},
		{"weights-on-builtin", func(s *Spec) {
			s.Flows[0].Weights = &Weights{Throughput: 1, Latency: 1, Loss: 1}
		}, "no effect"},
		{"flow-starts-after-end", func(s *Spec) { s.Flows[0].StartSec = 5 }, "never run"},
		{"cross-starts-after-end", func(s *Spec) { s.Cross = []Cross{{RateMbps: 1, StartSec: 9}} }, "never run"},
		{"bad-app", func(s *Spec) { s.Flows[0].App = &App{Kind: "game"} }, "app kind"},
		{"bulk-no-size", func(s *Spec) { s.Flows[0].App = &App{Kind: "bulk"} }, "file_mbytes"},
		{"rtc-no-rate", func(s *Spec) { s.Flows[0].App = &App{Kind: "rtc"} }, "source_mbps"},
		{"bad-cross", func(s *Spec) { s.Cross = []Cross{{RateMbps: -1}} }, "rate_mbps"},
		{"nan-bin", func(s *Spec) {
			s.Link.CapacityMbps = 0
			s.Link.TraceFile = "x.trace"
			s.Link.TraceBinMs = math.NaN()
		}, "trace_bin_ms"},
		{"nan-mi", func(s *Spec) { s.Flows[0].MIms = math.NaN() }, "mi_ms"},
		{"inf-mi", func(s *Spec) { s.Flows[0].MIms = math.Inf(1) }, "mi_ms"},
		{"rate-on-reactive-scheme", func(s *Spec) { s.Flows[0].RateMbps = 100 }, "rate_mbps"},
		{"bulk-too-big", func(s *Spec) { s.Flows[0].App = &App{Kind: "bulk", FileMBytes: 2e16} }, "file_mbytes"},
		{"bulk-with-source", func(s *Spec) {
			s.Flows[0].App = &App{Kind: "bulk", FileMBytes: 1, SourceMbps: 3}
		}, "no effect"},
		{"rtc-with-file", func(s *Spec) {
			s.Flows[0].App = &App{Kind: "rtc", SourceMbps: 3, FileMBytes: 1}
		}, "no effect"},
		{"video-with-params", func(s *Spec) {
			s.Flows[0].App = &App{Kind: "video", SourceMbps: 3}
		}, "no parameters"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestCompileBuiltinsAndCross(t *testing.T) {
	s := validSpec()
	s.Flows = []Flow{
		{Scheme: "cubic"},
		{Scheme: "fixed", RateMbps: 2, Label: "pinned"},
		{Scheme: "bbr", App: &App{Kind: "bulk", FileMBytes: 0.15}},
		{Scheme: "vegas", App: &App{Kind: "rtc", SourceMbps: 1}},
	}
	s.Cross = []Cross{{RateMbps: 1}, {RateMbps: 2, OnOffSec: 0.5}}
	c, err := s.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(c.Flows), 6; got != want {
		t.Fatalf("compiled %d flows, want %d", got, want)
	}
	if c.NumFlows != 4 {
		t.Errorf("NumFlows = %d, want 4", c.NumFlows)
	}
	if c.Flows[1].Label != "pinned" {
		t.Errorf("label override lost: %q", c.Flows[1].Label)
	}
	wantBudget := int(0.15 * 1e6 / 1500)
	if c.Flows[2].PacketBudget != wantBudget {
		t.Errorf("bulk packet budget = %d, want %d", c.Flows[2].PacketBudget, wantBudget)
	}
	if c.Flows[4].Label != "cross-0" || c.Flows[5].Label != "cross-1" {
		t.Errorf("cross labels = %q, %q", c.Flows[4].Label, c.Flows[5].Label)
	}
	// Per-flow seeds must be deterministic and distinct.
	seen := map[int64]bool{}
	for _, f := range c.Flows {
		if seen[f.Seed] {
			t.Errorf("duplicate derived flow seed %d", f.Seed)
		}
		seen[f.Seed] = true
	}
}

func TestCompileUnknownScheme(t *testing.T) {
	s := validSpec()
	s.Flows[0].Scheme = "mocc"
	if _, err := s.Compile(CompileOptions{}); err == nil || !strings.Contains(err.Error(), "resolver") {
		t.Fatalf("unknown scheme error = %v, want mention of resolver", err)
	}
}

func TestCompileResolver(t *testing.T) {
	s := validSpec()
	s.Flows = []Flow{{Scheme: "mocc"}, {Scheme: "cubic"}}
	resolved := 0
	c, err := s.Compile(CompileOptions{Resolver: func(f Flow) (cc.Algorithm, error) {
		if f.Scheme == "mocc" {
			resolved++
			return cc.NewVegas(), nil // stand-in model
		}
		return nil, nil // fall through to built-ins
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resolved != 1 {
		t.Errorf("resolver used %d times, want 1", resolved)
	}
	if got := c.Flows[1].Alg.Name(); got != "cubic" {
		t.Errorf("fall-through flow got %q, want cubic", got)
	}
}

func TestCompileTraceFile(t *testing.T) {
	s := validSpec()
	s.Link.CapacityMbps = 0
	s.Link.TraceFile = "cellular.trace"
	c, err := s.Compile(CompileOptions{BaseDir: tracesDir})
	if err != nil {
		t.Fatal(err)
	}
	if c.Link.Capacity.At(0) <= 0 {
		t.Errorf("trace-backed capacity At(0) = %g, want > 0", c.Link.Capacity.At(0))
	}
	// Missing file must surface the path.
	s.Link.TraceFile = "missing.trace"
	if _, err := s.Compile(CompileOptions{BaseDir: tracesDir}); err == nil || !strings.Contains(err.Error(), "missing.trace") {
		t.Fatalf("missing trace error = %v", err)
	}
}

func TestGymView(t *testing.T) {
	s := validSpec()
	s.Flows = []Flow{
		{Scheme: "cubic", MIms: 25},
		{Scheme: "fixed", RateMbps: 3, StartSec: 1, StopSec: 4},
	}
	s.Cross = []Cross{{RateMbps: 1.5, OnOffSec: 1}}
	cfg, err := s.Gym(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LatencyMs != 20 {
		t.Errorf("LatencyMs = %g, want 20 (half of 40ms RTT)", cfg.LatencyMs)
	}
	if cfg.MIms != 25 {
		t.Errorf("MIms = %g, want 25", cfg.MIms)
	}
	if cfg.CrossTraffic == nil {
		t.Fatal("cross traffic not folded into gym config")
	}
	fixedPps := 3.0 * 1e6 / 8 / 1500
	onOffPps := 1.5 * 1e6 / 8 / 1500
	cases := []struct{ t, want float64 }{
		{0.5, onOffPps},            // cross on-phase, fixed flow not started
		{1.5, fixedPps},            // cross off-phase, fixed flow active
		{2.5, onOffPps + fixedPps}, // cross back on, fixed flow active
		{4.5, onOffPps},            // fixed flow stopped, cross on-phase
	}
	for _, c := range cases {
		if got := cfg.CrossTraffic.At(c.t); got != c.want {
			t.Errorf("CrossTraffic.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

// TestGymViewPeakRateCap mirrors the netsim-path fix on the gym lowering: a
// schedule opening inside an outage must not under-cap the agent's rate
// via gym's At(0)-derived MaxRate default.
func TestGymViewPeakRateCap(t *testing.T) {
	s := validSpec()
	s.Link.CapacityMbps = 0
	s.Link.Schedule = []Level{{AtSec: 0, Mbps: 0}, {AtSec: 1, Mbps: 10}}
	cfg, err := s.Gym(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	peakPps := 10.0 * 1e6 / 8 / 1500
	if got, want := cfg.MaxRate, 8*peakPps; got != want {
		t.Fatalf("MaxRate = %g, want %g (8x schedule peak)", got, want)
	}
	env := gym.New(cfg)
	env.SetRate(peakPps) // must not be clamped below the link's peak
	if got := env.Rate(); got != peakPps {
		t.Errorf("rate clamped to %g, want %g", got, peakPps)
	}
}
