package scenario

import (
	"strings"
	"testing"
)

// TestDiffEnginesOnGeneratedScenarios is the differential harness smoke:
// two scenarios per family must replay bit-identically on both engines.
func TestDiffEnginesOnGeneratedScenarios(t *testing.T) {
	for _, f := range Families() {
		for seed := int64(0); seed < 2; seed++ {
			spec, err := Generate(f, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", f, seed, err)
			}
			packets, err := DiffEngines(spec, CompileOptions{})
			if err != nil {
				t.Errorf("%s/%d: %v", f, seed, err)
			}
			if packets == 0 {
				t.Errorf("%s/%d: scenario moved no packets", f, seed)
			}
		}
	}
}

// TestFuzzRun drives the packaged fuzz loop the CI smoke uses.
func TestFuzzRun(t *testing.T) {
	res, err := Fuzz(FuzzConfig{N: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 6 {
		t.Errorf("Scenarios = %d, want 6", res.Scenarios)
	}
	if res.Packets <= 0 {
		t.Errorf("Packets = %d, want > 0", res.Packets)
	}
}

// TestFuzzFamilyFilter restricts the rotation.
func TestFuzzFamilyFilter(t *testing.T) {
	var seen []string
	_, err := Fuzz(FuzzConfig{
		N: 3, Seed: 1, Families: []Family{Incast},
		Progress: func(_ int, s *Spec, _ int) { seen = append(seen, s.Family) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range seen {
		if f != string(Incast) {
			t.Errorf("family filter leaked %q", f)
		}
	}
}

// TestDiffEnginesReportsDivergence checks that an intentionally divergent
// pair is reported with a useful message (exercised by corrupting one
// engine's seed via a spec copy: different loss RNG streams must differ).
func TestDiffEnginesReportsDivergence(t *testing.T) {
	spec, err := Generate(LossyWireless, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the unmodified spec agrees.
	if _, err := DiffEngines(spec, CompileOptions{}); err != nil {
		t.Fatalf("baseline diff failed: %v", err)
	}
	// diffFlows itself must flag mismatched series: run the same spec at
	// two different spec seeds and compare the raw flows directly.
	a := *spec
	a.Seed = 1234 // different loss stream
	_, fa, err := execute(spec, CompileOptions{}, EngineFast)
	if err != nil {
		t.Fatal(err)
	}
	_, fb, err := execute(&a, CompileOptions{}, EngineFast)
	if err != nil {
		t.Fatal(err)
	}
	oa := make([]flowOutcome, len(fa))
	ob := make([]flowOutcome, len(fb))
	for i := range fa {
		oa[i] = outcomeFromNetsim(fa[i])
		ob[i] = outcomeFromNetsim(fb[i])
	}
	if err := diffFlows(oa, ob); err == nil {
		t.Fatal("diffFlows missed a divergent pair")
	} else if !strings.Contains(err.Error(), "flow") {
		t.Errorf("divergence error %q does not name a flow", err)
	}
}

// TestRunSpecTraceReplayEndToEnd is the acceptance path: a Mahimahi trace
// file loads into a trace.Bandwidth via a Spec, drives a full netsim run,
// and produces per-flow stats; the same spec lowers to the gym for the
// pantheon-style harness.
func TestRunSpecTraceReplayEndToEnd(t *testing.T) {
	spec := &Spec{
		Version:     SpecVersion,
		Name:        "trace-replay-e2e",
		DurationSec: 20, // exceeds the 16s trace: exercises wraparound replay
		Seed:        3,
		Link:        Link{RTTms: 60, QueuePkts: 150, TraceFile: "cellular.trace"},
		Flows: []Flow{
			{Scheme: "cubic"},
			{Scheme: "bbr", StartSec: 5},
		},
	}
	res, err := Run(spec, RunOptions{CompileOptions: CompileOptions{BaseDir: tracesDir}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("got %d flow results, want 2", len(res.Flows))
	}
	for _, fr := range res.Flows {
		if fr.Delivered == 0 {
			t.Errorf("flow %s delivered nothing", fr.Label)
		}
		if fr.ThroughputMbps <= 0 {
			t.Errorf("flow %s throughput = %g", fr.Label, fr.ThroughputMbps)
		}
		if fr.AvgRTTms < 60 {
			t.Errorf("flow %s avg RTT %.1fms below the 60ms base RTT", fr.Label, fr.AvgRTTms)
		}
		if fr.MIs == 0 {
			t.Errorf("flow %s recorded no monitor intervals", fr.Label)
		}
	}
	// Both engines agree on the trace-driven scenario too.
	if _, err := DiffEngines(spec, CompileOptions{BaseDir: tracesDir}); err != nil {
		t.Errorf("trace-driven scenario diverges across engines: %v", err)
	}
	// And the gym lowering runs (the pantheon harness path).
	cfg, err := spec.Gym(CompileOptions{BaseDir: tracesDir})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Bandwidth.At(0) <= 0 {
		t.Fatal("gym bandwidth not trace-driven")
	}
}

// TestRunScheduleOpeningInOutage pins the MaxRate fix: a schedule whose
// first segment is 0 Mbps (a trace recorded mid-outage) must not pin flow
// rates to zero for the whole run — the cap derives from the schedule's
// peak, so flows deliver once capacity appears.
func TestRunScheduleOpeningInOutage(t *testing.T) {
	spec := &Spec{
		Version:     SpecVersion,
		Name:        "opens-in-outage",
		DurationSec: 10,
		Seed:        1,
		Link: Link{
			RTTms: 40, QueuePkts: 100,
			Schedule: []Level{{AtSec: 0, Mbps: 0}, {AtSec: 1, Mbps: 10}},
		},
		Flows: []Flow{{Scheme: "cubic"}},
	}
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Flows[0]
	if fr.Delivered == 0 {
		t.Fatalf("flow delivered nothing on a link that is 10 Mbps for 9 of 10 seconds: %+v", fr)
	}
	// The virtual-queue model stalls for a while after an outage (packets
	// admitted during the fade keep their slow-era service times), so the
	// bar is "recovers and delivers", not full utilization.
	if fr.ThroughputMbps < 0.3 {
		t.Errorf("throughput %.3f Mbps, want recovery after the outage", fr.ThroughputMbps)
	}
	// The outage floor keeps the differential harness happy too.
	spec2 := *spec
	if _, err := DiffEngines(&spec2, CompileOptions{}); err != nil {
		t.Errorf("outage scenario diverges across engines: %v", err)
	}
	// The degenerate all-zero schedule is rejected up front instead.
	spec.Link.Schedule = []Level{{AtSec: 0, Mbps: 0}, {AtSec: 1, Mbps: 0}}
	if err := spec.Validate(); err == nil {
		t.Fatal("all-zero schedule accepted")
	}
}

// TestRunFixedRateAboveLinkCap pins declared-rate honouring: a fixed flow
// deliberately offering far more than the link carries (an overload study)
// must SEND at its declared rate, not at the link-derived 4x-peak cap.
func TestRunFixedRateAboveLinkCap(t *testing.T) {
	spec := &Spec{
		Version:     SpecVersion,
		Name:        "overload",
		DurationSec: 5,
		Seed:        1,
		Link:        Link{RTTms: 20, QueuePkts: 50, CapacityMbps: 1},
		Flows:       []Flow{{Scheme: "fixed", RateMbps: 50}},
	}
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantSent := 50.0 * 1e6 / 8 / 1500 * 5 // declared rate x duration
	if got := float64(res.Flows[0].Sent); got < 0.95*wantSent {
		t.Fatalf("overload flow sent %.0f pkts, want ~%.0f (declared 50 Mbps, not the 4x-peak cap)", got, wantSent)
	}
	// And the differential harness stays clean on overload specs.
	if _, err := DiffEngines(spec, CompileOptions{}); err != nil {
		t.Errorf("overload scenario diverges across engines: %v", err)
	}
}

// TestRunVideoApp attaches the ABR workload to a flow and checks the
// post-processing lands in the result.
func TestRunVideoApp(t *testing.T) {
	spec := &Spec{
		Version:     SpecVersion,
		Name:        "video",
		DurationSec: 30,
		Seed:        1,
		Link:        Link{RTTms: 40, QueuePkts: 300, CapacityMbps: 8},
		Flows: []Flow{
			{Scheme: "cubic", App: &App{Kind: "video"}},
			{Scheme: "fixed", RateMbps: 2, Label: "background"},
		},
	}
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].ABR == nil {
		t.Fatal("video flow has no ABR result")
	}
	if len(res.Flows[0].ABR.Levels) == 0 {
		t.Error("ABR simulated no chunks")
	}
	if res.Flows[1].ABR != nil {
		t.Error("non-video flow has an ABR result")
	}
}

// TestRunBulkCompletion checks bulk-app packet budgets terminate flows.
func TestRunBulkCompletion(t *testing.T) {
	spec := &Spec{
		Version:     SpecVersion,
		Name:        "bulk",
		DurationSec: 60,
		Seed:        2,
		Link:        Link{RTTms: 20, QueuePkts: 500, CapacityMbps: 20},
		Flows:       []Flow{{Scheme: "cubic", App: &App{Kind: "bulk", FileMBytes: 0.5}}},
	}
	res, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Flows[0]
	if !fr.Completed {
		t.Fatal("bulk transfer did not complete")
	}
	if fr.CompletionSec <= 0 || fr.CompletionSec >= 60 {
		t.Errorf("completion at %gs, want inside the run", fr.CompletionSec)
	}
}

// TestRunEngineSelection runs the same spec on both engines through the
// public Run surface and compares the summaries.
func TestRunEngineSelection(t *testing.T) {
	spec, err := Generate(Cellular, 9)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(spec, RunOptions{Engine: EngineFast})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(spec, RunOptions{Engine: EngineReference})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast.Flows {
		if fast.Flows[i] != ref.Flows[i] {
			t.Errorf("flow %d summaries differ across engines:\nfast: %+v\nref:  %+v",
				i, fast.Flows[i], ref.Flows[i])
		}
	}
	if _, err := Run(spec, RunOptions{Engine: Engine("warp")}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
