// Package scenario makes network scenarios first-class data instead of
// code. A Spec is a versioned, declarative JSON description of one
// experiment — the bottleneck link (constant capacity, a piecewise
// schedule, or a replayed Mahimahi trace), the flows crossing it (scheme,
// activity window, preference weights, application workload) and any
// non-reactive cross traffic — that compiles into netsim and gym
// configurations without recompiling Go. A seeded Generator produces
// unlimited deterministic Specs from named families (cellular, wifi,
// satellite, ...), and the differential fuzz harness replays every
// generated Spec through both netsim engines and diffs the results
// bitwise, turning the generator into an engine-equivalence fuzzer.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// SpecVersion is the schema version this package reads and writes.
const SpecVersion = 1

// DefaultPktBytes is the packet size used for Mbps<->pkts/s conversions
// when a spec does not override it.
const DefaultPktBytes = 1500

// Weights is a declarative preference vector for learned schemes
// (throughput, latency, loss importance; normalized at compile time).
type Weights struct {
	Throughput float64 `json:"throughput"`
	Latency    float64 `json:"latency"`
	Loss       float64 `json:"loss"`
}

// Level is one segment of a declarative capacity schedule.
type Level struct {
	AtSec float64 `json:"at_sec"` // segment start time
	Mbps  float64 `json:"mbps"`   // capacity from AtSec on
}

// Link describes the shared bottleneck. Exactly one capacity source must
// be set: CapacityMbps (constant), Schedule (piecewise levels), or
// TraceFile (Mahimahi-format replay, resolved relative to the spec file).
type Link struct {
	RTTms     float64 `json:"rtt_ms"`
	QueuePkts int     `json:"queue_pkts,omitempty"` // 0 selects the simulator default
	LossRate  float64 `json:"loss_rate,omitempty"`  // random (non-congestive) loss in [0, 1)

	CapacityMbps    float64 `json:"capacity_mbps,omitempty"`
	Schedule        []Level `json:"schedule,omitempty"`
	ScheduleLoopSec float64 `json:"schedule_loop_sec,omitempty"` // wraparound period; 0 holds the last level
	TraceFile       string  `json:"trace_file,omitempty"`
	TraceBinMs      float64 `json:"trace_bin_ms,omitempty"` // rate-estimation bin (default 100ms)
}

// App attaches an application workload from internal/apps to a flow.
type App struct {
	// Kind selects the workload: "bulk" (finite transfer, flow ends after
	// FileMBytes), "rtc" (app-limited to SourceMbps) or "video" (ABR
	// post-processing over the flow's per-second throughput series).
	Kind       string  `json:"kind"`
	FileMBytes float64 `json:"file_mbytes,omitempty"` // bulk
	SourceMbps float64 `json:"source_mbps,omitempty"` // rtc
}

// Flow describes one sender-receiver pair.
type Flow struct {
	// Scheme names the congestion controller. Built-ins: cubic, vegas,
	// bbr, copa, pcc-allegro, pcc-vivace, fixed (requires RateMbps).
	// Learned schemes (mocc, mocc-throughput, mocc-latency,
	// aurora-throughput, aurora-latency, orca) need a SchemeResolver —
	// the CLIs wire one backed by the pantheon model zoo.
	Scheme   string   `json:"scheme"`
	Label    string   `json:"label,omitempty"`
	StartSec float64  `json:"start_sec,omitempty"`
	StopSec  float64  `json:"stop_sec,omitempty"` // 0 = run to the end
	RateMbps float64  `json:"rate_mbps,omitempty"`
	Weights  *Weights `json:"weights,omitempty"` // learned-scheme preference
	App      *App     `json:"app,omitempty"`
	MIms     float64  `json:"mi_ms,omitempty"` // monitor interval (0 = one base RTT)
	Seed     int64    `json:"seed,omitempty"`  // 0 derives from the spec seed
}

// Cross is non-reactive background traffic sharing the bottleneck.
type Cross struct {
	RateMbps float64 `json:"rate_mbps"`
	OnOffSec float64 `json:"on_off_sec,omitempty"` // square wave half-period; 0 = constant
	StartSec float64 `json:"start_sec,omitempty"`
	StopSec  float64 `json:"stop_sec,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Version     int     `json:"version"`
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Family      string  `json:"family,omitempty"` // generator provenance
	DurationSec float64 `json:"duration_sec"`
	Seed        int64   `json:"seed,omitempty"`
	PktBytes    int     `json:"pkt_bytes,omitempty"` // default 1500
	Link        Link    `json:"link"`
	Flows       []Flow  `json:"flows"`
	Cross       []Cross `json:"cross,omitempty"`
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected so
// typos in hand-written specs fail loudly.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// JSON renders the spec as indented, newline-terminated JSON — the
// canonical byte form the generator's determinism guarantee is stated over.
func (s *Spec) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	return append(out, '\n'), nil
}

// finitePos reports whether v is a finite number > 0.
func finitePos(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// finiteNonNeg reports whether v is a finite number >= 0.
func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Validate checks the structural constraints every consumer relies on.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: spec version %d is not supported (want %d)", s.Version, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if !finitePos(s.DurationSec) {
		return fmt.Errorf("scenario %q: duration_sec %g must be > 0", s.Name, s.DurationSec)
	}
	if s.PktBytes < 0 {
		return fmt.Errorf("scenario %q: pkt_bytes %d must be >= 0", s.Name, s.PktBytes)
	}
	if err := s.Link.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("scenario %q: at least one flow is required", s.Name)
	}
	for i, f := range s.Flows {
		if err := f.validate(); err != nil {
			return fmt.Errorf("scenario %q: flow %d: %w", s.Name, i, err)
		}
		if f.StartSec >= s.DurationSec {
			return fmt.Errorf("scenario %q: flow %d: start_sec %g is at or past duration_sec %g (the flow would never run)",
				s.Name, i, f.StartSec, s.DurationSec)
		}
	}
	for i, c := range s.Cross {
		if err := c.validate(); err != nil {
			return fmt.Errorf("scenario %q: cross %d: %w", s.Name, i, err)
		}
		if c.StartSec >= s.DurationSec {
			return fmt.Errorf("scenario %q: cross %d: start_sec %g is at or past duration_sec %g (the cross traffic would never run)",
				s.Name, i, c.StartSec, s.DurationSec)
		}
	}
	return nil
}

// builtinSchemes names the model-free controllers the compiler provides
// itself; preference weights have no effect on them.
var builtinSchemes = map[string]bool{
	"cubic": true, "vegas": true, "bbr": true, "copa": true,
	"pcc-allegro": true, "pcc-vivace": true, "fixed": true,
}

func (l Link) validate() error {
	if !finitePos(l.RTTms) {
		return fmt.Errorf("link: rtt_ms %g must be > 0", l.RTTms)
	}
	if l.QueuePkts < 0 {
		return fmt.Errorf("link: queue_pkts %d must be >= 0", l.QueuePkts)
	}
	if !finiteNonNeg(l.LossRate) || l.LossRate >= 1 {
		return fmt.Errorf("link: loss_rate %g must lie in [0, 1)", l.LossRate)
	}
	sources := 0
	if l.CapacityMbps != 0 {
		if !finitePos(l.CapacityMbps) {
			return fmt.Errorf("link: capacity_mbps %g must be > 0", l.CapacityMbps)
		}
		sources++
	}
	if len(l.Schedule) > 0 {
		sources++
		if l.Schedule[0].AtSec != 0 {
			return fmt.Errorf("link: schedule must start at at_sec 0, got %g", l.Schedule[0].AtSec)
		}
		anyCapacity := false
		for i, lv := range l.Schedule {
			if !finiteNonNeg(lv.AtSec) {
				return fmt.Errorf("link: schedule[%d].at_sec %g must be finite and >= 0", i, lv.AtSec)
			}
			if !finiteNonNeg(lv.Mbps) {
				return fmt.Errorf("link: schedule[%d].mbps %g must be >= 0", i, lv.Mbps)
			}
			if lv.Mbps > 0 {
				anyCapacity = true
			}
			if i > 0 && !(lv.AtSec > l.Schedule[i-1].AtSec) {
				return fmt.Errorf("link: schedule times must be strictly increasing: schedule[%d].at_sec %g <= %g",
					i, lv.AtSec, l.Schedule[i-1].AtSec)
			}
		}
		if !anyCapacity {
			return fmt.Errorf("link: schedule never provides capacity (every level is 0 Mbps)")
		}
		if l.ScheduleLoopSec != 0 {
			last := l.Schedule[len(l.Schedule)-1].AtSec
			if !finitePos(l.ScheduleLoopSec) || l.ScheduleLoopSec <= last {
				return fmt.Errorf("link: schedule_loop_sec %g must exceed the last segment start %g", l.ScheduleLoopSec, last)
			}
		}
	} else if l.ScheduleLoopSec != 0 {
		return fmt.Errorf("link: schedule_loop_sec is set without a schedule")
	}
	if l.TraceFile != "" {
		sources++
		if !finiteNonNeg(l.TraceBinMs) || (l.TraceBinMs != 0 && l.TraceBinMs < 1) {
			return fmt.Errorf("link: trace_bin_ms %g must be 0 (default) or >= 1", l.TraceBinMs)
		}
	} else if l.TraceBinMs != 0 {
		return fmt.Errorf("link: trace_bin_ms is set without a trace_file")
	}
	if sources != 1 {
		return fmt.Errorf("link: exactly one of capacity_mbps, schedule or trace_file must be set (got %d)", sources)
	}
	return nil
}

func (f Flow) validate() error {
	if f.Scheme == "" {
		return fmt.Errorf("scheme is required")
	}
	if !finiteNonNeg(f.StartSec) {
		return fmt.Errorf("start_sec %g must be >= 0", f.StartSec)
	}
	if f.StopSec != 0 && (!finitePos(f.StopSec) || f.StopSec <= f.StartSec) {
		return fmt.Errorf("stop_sec %g must be 0 or > start_sec %g", f.StopSec, f.StartSec)
	}
	if f.RateMbps != 0 && !finitePos(f.RateMbps) {
		return fmt.Errorf("rate_mbps %g must be > 0", f.RateMbps)
	}
	if f.Scheme == "fixed" && f.RateMbps == 0 {
		return fmt.Errorf("scheme \"fixed\" requires rate_mbps")
	}
	if f.Scheme != "fixed" && f.RateMbps != 0 {
		return fmt.Errorf("rate_mbps is only meaningful for the \"fixed\" scheme (got scheme %q); use app.source_mbps for app-limited flows", f.Scheme)
	}
	if !finiteNonNeg(f.MIms) {
		return fmt.Errorf("mi_ms %g must be finite and >= 0", f.MIms)
	}
	if f.Weights != nil {
		if builtinSchemes[f.Scheme] {
			return fmt.Errorf("weights have no effect on built-in scheme %q; use a preference-driven scheme such as \"mocc\"", f.Scheme)
		}
		w := *f.Weights
		if !finiteNonNeg(w.Throughput) || !finiteNonNeg(w.Latency) || !finiteNonNeg(w.Loss) {
			return fmt.Errorf("weights must be finite and >= 0")
		}
		if w.Throughput+w.Latency+w.Loss <= 0 {
			return fmt.Errorf("weights must not all be zero")
		}
	}
	if f.App != nil {
		switch f.App.Kind {
		case "bulk":
			if !finitePos(f.App.FileMBytes) {
				return fmt.Errorf("bulk app requires file_mbytes > 0")
			}
			// 1 TB bound: keeps the packet budget far from int overflow
			// and any plausible experiment.
			if f.App.FileMBytes > 1e6 {
				return fmt.Errorf("bulk app file_mbytes %g exceeds the 1e6 (1 TB) limit", f.App.FileMBytes)
			}
			if f.App.SourceMbps != 0 {
				return fmt.Errorf("source_mbps has no effect on a bulk app (it belongs to kind \"rtc\")")
			}
		case "rtc":
			if !finitePos(f.App.SourceMbps) {
				return fmt.Errorf("rtc app requires source_mbps > 0")
			}
			if f.App.FileMBytes != 0 {
				return fmt.Errorf("file_mbytes has no effect on an rtc app (it belongs to kind \"bulk\")")
			}
		case "video":
			// No parameters: the default ABR player consumes the flow's
			// throughput series.
			if f.App.FileMBytes != 0 || f.App.SourceMbps != 0 {
				return fmt.Errorf("video app takes no parameters (got file_mbytes %g, source_mbps %g)",
					f.App.FileMBytes, f.App.SourceMbps)
			}
		default:
			return fmt.Errorf("unknown app kind %q (want bulk, rtc or video)", f.App.Kind)
		}
	}
	return nil
}

func (c Cross) validate() error {
	if !finitePos(c.RateMbps) {
		return fmt.Errorf("rate_mbps %g must be > 0", c.RateMbps)
	}
	if !finiteNonNeg(c.OnOffSec) {
		return fmt.Errorf("on_off_sec %g must be >= 0", c.OnOffSec)
	}
	if !finiteNonNeg(c.StartSec) {
		return fmt.Errorf("start_sec %g must be >= 0", c.StartSec)
	}
	if c.StopSec != 0 && (!finitePos(c.StopSec) || c.StopSec <= c.StartSec) {
		return fmt.Errorf("stop_sec %g must be 0 or > start_sec %g", c.StopSec, c.StartSec)
	}
	return nil
}
