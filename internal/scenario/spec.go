// Package scenario makes network scenarios first-class data instead of
// code. A Spec is a versioned, declarative JSON description of one
// experiment — the bottleneck link (constant capacity, a piecewise
// schedule, or a replayed Mahimahi trace), the flows crossing it (scheme,
// activity window, preference weights, application workload) and any
// non-reactive cross traffic — that compiles into netsim and gym
// configurations without recompiling Go. A seeded Generator produces
// unlimited deterministic Specs from named families (cellular, wifi,
// satellite, ...), and the differential fuzz harness replays every
// generated Spec through both netsim engines and diffs the results
// bitwise, turning the generator into an engine-equivalence fuzzer.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// SpecVersion is the newest schema version this package writes. Version 1
// specs (single bottleneck) remain accepted unchanged; version 2 adds the
// optional topology section (`links` + per-flow `path`) lowered onto
// mocc/internal/topo.
const SpecVersion = 2

// minSpecVersion is the oldest schema version still accepted.
const minSpecVersion = 1

// DefaultPktBytes is the packet size used for Mbps<->pkts/s conversions
// when a spec does not override it.
const DefaultPktBytes = 1500

// Weights is a declarative preference vector for learned schemes
// (throughput, latency, loss importance; normalized at compile time).
type Weights struct {
	Throughput float64 `json:"throughput"`
	Latency    float64 `json:"latency"`
	Loss       float64 `json:"loss"`
}

// Level is one segment of a declarative capacity schedule.
type Level struct {
	AtSec float64 `json:"at_sec"` // segment start time
	Mbps  float64 `json:"mbps"`   // capacity from AtSec on
}

// Link describes one bottleneck. Exactly one capacity source must be set:
// CapacityMbps (constant), Schedule (piecewise levels), or TraceFile
// (Mahimahi-format replay, resolved relative to the spec file).
//
// In a version 1 spec (or a version 2 spec without a topology) it is the
// single shared bottleneck, characterized by its round-trip time. As an
// entry of a version 2 `links` section it is one named link of the
// topology, characterized by its one-way DelayMs instead (the RTT of a
// flow is twice the sum of its path's delays).
type Link struct {
	Name      string  `json:"name,omitempty"`       // topology links: referenced by flow paths
	RTTms     float64 `json:"rtt_ms,omitempty"`     // single-bottleneck form only
	DelayMs   float64 `json:"delay_ms,omitempty"`   // topology links: one-way delay
	QueuePkts int     `json:"queue_pkts,omitempty"` // 0 selects the simulator default
	LossRate  float64 `json:"loss_rate,omitempty"`  // random (non-congestive) loss in [0, 1)

	CapacityMbps    float64 `json:"capacity_mbps,omitempty"`
	Schedule        []Level `json:"schedule,omitempty"`
	ScheduleLoopSec float64 `json:"schedule_loop_sec,omitempty"` // wraparound period; 0 holds the last level
	TraceFile       string  `json:"trace_file,omitempty"`
	TraceBinMs      float64 `json:"trace_bin_ms,omitempty"` // rate-estimation bin (default 100ms)
}

// App attaches an application workload from internal/apps to a flow.
type App struct {
	// Kind selects the workload: "bulk" (finite transfer, flow ends after
	// FileMBytes), "rtc" (app-limited to SourceMbps) or "video" (ABR
	// post-processing over the flow's per-second throughput series).
	Kind       string  `json:"kind"`
	FileMBytes float64 `json:"file_mbytes,omitempty"` // bulk
	SourceMbps float64 `json:"source_mbps,omitempty"` // rtc
}

// Flow describes one sender-receiver pair.
type Flow struct {
	// Scheme names the congestion controller. Built-ins: cubic, vegas,
	// bbr, copa, pcc-allegro, pcc-vivace, fixed (requires RateMbps).
	// Learned schemes (mocc, mocc-throughput, mocc-latency,
	// aurora-throughput, aurora-latency, orca) need a SchemeResolver —
	// the CLIs wire one backed by the pantheon model zoo.
	Scheme   string   `json:"scheme"`
	Label    string   `json:"label,omitempty"`
	StartSec float64  `json:"start_sec,omitempty"`
	StopSec  float64  `json:"stop_sec,omitempty"` // 0 = run to the end
	RateMbps float64  `json:"rate_mbps,omitempty"`
	Weights  *Weights `json:"weights,omitempty"` // learned-scheme preference
	App      *App     `json:"app,omitempty"`
	MIms     float64  `json:"mi_ms,omitempty"` // monitor interval (0 = one base RTT)
	Seed     int64    `json:"seed,omitempty"`  // 0 derives from the spec seed
	// Path is the ordered list of link names the flow traverses; required
	// when (and only when) the spec declares a topology.
	Path []string `json:"path,omitempty"`
}

// Cross is non-reactive background traffic sharing the bottleneck (or, in
// a topology spec, the links named by its path).
type Cross struct {
	RateMbps float64 `json:"rate_mbps"`
	OnOffSec float64 `json:"on_off_sec,omitempty"` // square wave half-period; 0 = constant
	StartSec float64 `json:"start_sec,omitempty"`
	StopSec  float64 `json:"stop_sec,omitempty"`
	// Path is the ordered list of link names the traffic traverses;
	// required when (and only when) the spec declares a topology.
	Path []string `json:"path,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Version     int     `json:"version"`
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Family      string  `json:"family,omitempty"` // generator provenance
	DurationSec float64 `json:"duration_sec"`
	Seed        int64   `json:"seed,omitempty"`
	PktBytes    int     `json:"pkt_bytes,omitempty"` // default 1500
	Link        Link    `json:"link,omitzero"`
	// Links, when non-empty, declares a multi-bottleneck topology (version
	// 2): named links that flow/cross paths traverse in order. Mutually
	// exclusive with the single Link.
	Links []Link  `json:"links,omitempty"`
	Flows []Flow  `json:"flows"`
	Cross []Cross `json:"cross,omitempty"`
}

// Topology reports whether the spec declares a multi-link topology and
// therefore lowers onto mocc/internal/topo instead of netsim.
func (s *Spec) Topology() bool { return len(s.Links) > 0 }

// Parse decodes and validates a JSON spec. Unknown fields are rejected so
// typos in hand-written specs fail loudly.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// JSON renders the spec as indented, newline-terminated JSON — the
// canonical byte form the generator's determinism guarantee is stated over.
func (s *Spec) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	return append(out, '\n'), nil
}

// finitePos reports whether v is a finite number > 0.
func finitePos(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// finiteNonNeg reports whether v is a finite number >= 0.
func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Validate checks the structural constraints every consumer relies on.
func (s *Spec) Validate() error {
	if s.Version < minSpecVersion || s.Version > SpecVersion {
		return fmt.Errorf("scenario: spec version %d is not supported (want %d..%d)", s.Version, minSpecVersion, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if !finitePos(s.DurationSec) {
		return fmt.Errorf("scenario %q: duration_sec %g must be > 0", s.Name, s.DurationSec)
	}
	if s.PktBytes < 0 {
		return fmt.Errorf("scenario %q: pkt_bytes %d must be >= 0", s.Name, s.PktBytes)
	}
	if s.Topology() {
		if err := s.validateTopology(); err != nil {
			return err
		}
	} else {
		if err := s.Link.validate("link", false); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("scenario %q: at least one flow is required", s.Name)
	}
	for i, f := range s.Flows {
		if err := f.validate(); err != nil {
			return fmt.Errorf("scenario %q: flow %d: %w", s.Name, i, err)
		}
		if err := s.validatePath(f.Path); err != nil {
			return fmt.Errorf("scenario %q: flow %d: %w", s.Name, i, err)
		}
		if f.StartSec >= s.DurationSec {
			return fmt.Errorf("scenario %q: flow %d: start_sec %g is at or past duration_sec %g (the flow would never run)",
				s.Name, i, f.StartSec, s.DurationSec)
		}
	}
	for i, c := range s.Cross {
		if err := c.validate(); err != nil {
			return fmt.Errorf("scenario %q: cross %d: %w", s.Name, i, err)
		}
		if err := s.validatePath(c.Path); err != nil {
			return fmt.Errorf("scenario %q: cross %d: %w", s.Name, i, err)
		}
		if c.StartSec >= s.DurationSec {
			return fmt.Errorf("scenario %q: cross %d: start_sec %g is at or past duration_sec %g (the cross traffic would never run)",
				s.Name, i, c.StartSec, s.DurationSec)
		}
	}
	if s.Topology() {
		if err := s.checkPathDAG(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// MaxTopologyLinks bounds the links section: the topology engine runs one
// shard per link and targets small DAGs (access / core / egress tiers).
const MaxTopologyLinks = 256

// validateTopology checks the version-2 links section itself: naming,
// per-link parameters, and the mutual exclusion with the single-link form.
func (s *Spec) validateTopology() error {
	if s.Version < 2 {
		return fmt.Errorf("scenario %q: a links section (topology) requires version 2, got version %d", s.Name, s.Version)
	}
	if s.Link.RTTms != 0 || s.Link.CapacityMbps != 0 || len(s.Link.Schedule) > 0 || s.Link.TraceFile != "" ||
		s.Link.QueuePkts != 0 || s.Link.LossRate != 0 || s.Link.ScheduleLoopSec != 0 || s.Link.TraceBinMs != 0 ||
		s.Link.Name != "" || s.Link.DelayMs != 0 {
		return fmt.Errorf("scenario %q: link and links are mutually exclusive; declare every bottleneck inside links", s.Name)
	}
	if len(s.Links) > MaxTopologyLinks {
		return fmt.Errorf("scenario %q: %d links exceed the %d-link limit", s.Name, len(s.Links), MaxTopologyLinks)
	}
	seen := make(map[string]int, len(s.Links))
	for i, l := range s.Links {
		ctx := fmt.Sprintf("links[%d]", i)
		if l.Name != "" {
			ctx = fmt.Sprintf("links[%d] (%q)", i, l.Name)
		}
		if l.Name == "" {
			return fmt.Errorf("scenario %q: %s: every topology link needs a name", s.Name, ctx)
		}
		if prev, dup := seen[l.Name]; dup {
			return fmt.Errorf("scenario %q: duplicate link name %q (links[%d] and links[%d])", s.Name, l.Name, prev, i)
		}
		seen[l.Name] = i
		if err := l.validate(ctx, true); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// linkIndex returns the position of the named topology link, or -1.
func (s *Spec) linkIndex(name string) int {
	for i, l := range s.Links {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// validatePath checks one flow/cross path against the spec's mode: paths
// are required over a topology, forbidden without one, and must be
// loop-free chains of declared link names.
func (s *Spec) validatePath(path []string) error {
	if !s.Topology() {
		if len(path) > 0 {
			return fmt.Errorf("path is set but the spec declares no links section (single-bottleneck specs take no paths)")
		}
		return nil
	}
	if len(path) == 0 {
		return fmt.Errorf("path is required when the spec declares a links section (name at least one link)")
	}
	seen := make(map[string]bool, len(path))
	for _, name := range path {
		if s.linkIndex(name) < 0 {
			return fmt.Errorf("path references undeclared link %q (declared: %s)", name, s.linkNames())
		}
		if seen[name] {
			return fmt.Errorf("path visits link %q twice (paths must be loop-free)", name)
		}
		seen[name] = true
	}
	return nil
}

// linkNames renders the declared link names for error messages.
func (s *Spec) linkNames() string {
	names := make([]byte, 0, 16*len(s.Links))
	for i, l := range s.Links {
		if i > 0 {
			names = append(names, ", "...)
		}
		names = append(names, l.Name...)
	}
	return string(names)
}

// checkPathDAG verifies that the union of all paths' link-to-link hops is
// acyclic (Kahn's algorithm), so a topology spec always describes a
// physically meaningful DAG of bottlenecks.
func (s *Spec) checkPathDAG() error {
	n := len(s.Links)
	adj := make([][]int, n)
	indeg := make([]int, n)
	type edge struct{ a, b int }
	seenEdge := make(map[edge]bool)
	addPath := func(path []string) {
		for i := 1; i < len(path); i++ {
			e := edge{s.linkIndex(path[i-1]), s.linkIndex(path[i])}
			if seenEdge[e] {
				continue
			}
			seenEdge[e] = true
			adj[e.a] = append(adj[e.a], e.b)
			indeg[e.b]++
		}
	}
	for _, f := range s.Flows {
		addPath(f.Path)
	}
	for _, c := range s.Cross {
		addPath(c.Path)
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		done++
		for _, w := range adj[v] {
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if done != n {
		var cyc []string
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				cyc = append(cyc, s.Links[i].Name)
			}
		}
		return fmt.Errorf("flow paths induce a cycle through links %v (the link graph must be a DAG)", cyc)
	}
	return nil
}

// builtinSchemes names the model-free controllers the compiler provides
// itself; preference weights have no effect on them.
var builtinSchemes = map[string]bool{
	"cubic": true, "vegas": true, "bbr": true, "copa": true,
	"pcc-allegro": true, "pcc-vivace": true, "fixed": true,
}

// validate checks one link's parameters. ctx names the link in errors —
// "link" for the single-bottleneck form, "links[i] (name)" for topology
// entries, so a multi-link spec's failures point at the offending link.
// topo selects the delay convention: topology links carry a one-way
// delay_ms, the single bottleneck an rtt_ms.
func (l Link) validate(ctx string, topo bool) error {
	if topo {
		if l.RTTms != 0 {
			return fmt.Errorf("%s: topology links take delay_ms (one-way), not rtt_ms (got rtt_ms %g)", ctx, l.RTTms)
		}
		if !finitePos(l.DelayMs) {
			return fmt.Errorf("%s: delay_ms %g must be > 0", ctx, l.DelayMs)
		}
	} else {
		if l.DelayMs != 0 {
			return fmt.Errorf("%s: delay_ms belongs to topology links; a single bottleneck takes rtt_ms (got delay_ms %g)", ctx, l.DelayMs)
		}
		if l.Name != "" {
			return fmt.Errorf("%s: name belongs to topology links (a single bottleneck is unnamed, got %q)", ctx, l.Name)
		}
		if !finitePos(l.RTTms) {
			return fmt.Errorf("%s: rtt_ms %g must be > 0", ctx, l.RTTms)
		}
	}
	if l.QueuePkts < 0 {
		return fmt.Errorf("%s: queue_pkts %d must be >= 0", ctx, l.QueuePkts)
	}
	if !finiteNonNeg(l.LossRate) || l.LossRate >= 1 {
		return fmt.Errorf("%s: loss_rate %g must lie in [0, 1)", ctx, l.LossRate)
	}
	sources := 0
	if l.CapacityMbps != 0 {
		if !finitePos(l.CapacityMbps) {
			return fmt.Errorf("%s: capacity_mbps %g must be > 0", ctx, l.CapacityMbps)
		}
		sources++
	}
	if len(l.Schedule) > 0 {
		sources++
		if l.Schedule[0].AtSec != 0 {
			return fmt.Errorf("%s: schedule must start at at_sec 0, got %g", ctx, l.Schedule[0].AtSec)
		}
		anyCapacity := false
		for i, lv := range l.Schedule {
			if !finiteNonNeg(lv.AtSec) {
				return fmt.Errorf("%s: schedule[%d].at_sec %g must be finite and >= 0", ctx, i, lv.AtSec)
			}
			if !finiteNonNeg(lv.Mbps) {
				return fmt.Errorf("%s: schedule[%d].mbps %g must be >= 0", ctx, i, lv.Mbps)
			}
			if lv.Mbps > 0 {
				anyCapacity = true
			}
			if i > 0 && !(lv.AtSec > l.Schedule[i-1].AtSec) {
				return fmt.Errorf("%s: schedule times must be strictly increasing: schedule[%d].at_sec %g <= %g",
					ctx, i, lv.AtSec, l.Schedule[i-1].AtSec)
			}
		}
		if !anyCapacity {
			return fmt.Errorf("%s: schedule never provides capacity (every level is 0 Mbps)", ctx)
		}
		if l.ScheduleLoopSec != 0 {
			last := l.Schedule[len(l.Schedule)-1].AtSec
			if !finitePos(l.ScheduleLoopSec) || l.ScheduleLoopSec <= last {
				return fmt.Errorf("%s: schedule_loop_sec %g must exceed the last segment start %g", ctx, l.ScheduleLoopSec, last)
			}
		}
	} else if l.ScheduleLoopSec != 0 {
		return fmt.Errorf("%s: schedule_loop_sec is set without a schedule", ctx)
	}
	if l.TraceFile != "" {
		sources++
		if !finiteNonNeg(l.TraceBinMs) || (l.TraceBinMs != 0 && l.TraceBinMs < 1) {
			return fmt.Errorf("%s: trace_bin_ms %g must be 0 (default) or >= 1", ctx, l.TraceBinMs)
		}
	} else if l.TraceBinMs != 0 {
		return fmt.Errorf("%s: trace_bin_ms is set without a trace_file", ctx)
	}
	if sources != 1 {
		return fmt.Errorf("%s: exactly one of capacity_mbps, schedule or trace_file must be set (got %d)", ctx, sources)
	}
	return nil
}

func (f Flow) validate() error {
	if f.Scheme == "" {
		return fmt.Errorf("scheme is required")
	}
	if !finiteNonNeg(f.StartSec) {
		return fmt.Errorf("start_sec %g must be >= 0", f.StartSec)
	}
	if f.StopSec != 0 && (!finitePos(f.StopSec) || f.StopSec <= f.StartSec) {
		return fmt.Errorf("stop_sec %g must be 0 or > start_sec %g", f.StopSec, f.StartSec)
	}
	if f.RateMbps != 0 && !finitePos(f.RateMbps) {
		return fmt.Errorf("rate_mbps %g must be > 0", f.RateMbps)
	}
	if f.Scheme == "fixed" && f.RateMbps == 0 {
		return fmt.Errorf("scheme \"fixed\" requires rate_mbps")
	}
	if f.Scheme != "fixed" && f.RateMbps != 0 {
		return fmt.Errorf("rate_mbps is only meaningful for the \"fixed\" scheme (got scheme %q); use app.source_mbps for app-limited flows", f.Scheme)
	}
	if !finiteNonNeg(f.MIms) {
		return fmt.Errorf("mi_ms %g must be finite and >= 0", f.MIms)
	}
	if f.Weights != nil {
		if builtinSchemes[f.Scheme] {
			return fmt.Errorf("weights have no effect on built-in scheme %q; use a preference-driven scheme such as \"mocc\"", f.Scheme)
		}
		w := *f.Weights
		if !finiteNonNeg(w.Throughput) || !finiteNonNeg(w.Latency) || !finiteNonNeg(w.Loss) {
			return fmt.Errorf("weights must be finite and >= 0")
		}
		if w.Throughput+w.Latency+w.Loss <= 0 {
			return fmt.Errorf("weights must not all be zero")
		}
	}
	if f.App != nil {
		switch f.App.Kind {
		case "bulk":
			if !finitePos(f.App.FileMBytes) {
				return fmt.Errorf("bulk app requires file_mbytes > 0")
			}
			// 1 TB bound: keeps the packet budget far from int overflow
			// and any plausible experiment.
			if f.App.FileMBytes > 1e6 {
				return fmt.Errorf("bulk app file_mbytes %g exceeds the 1e6 (1 TB) limit", f.App.FileMBytes)
			}
			if f.App.SourceMbps != 0 {
				return fmt.Errorf("source_mbps has no effect on a bulk app (it belongs to kind \"rtc\")")
			}
		case "rtc":
			if !finitePos(f.App.SourceMbps) {
				return fmt.Errorf("rtc app requires source_mbps > 0")
			}
			if f.App.FileMBytes != 0 {
				return fmt.Errorf("file_mbytes has no effect on an rtc app (it belongs to kind \"bulk\")")
			}
		case "video":
			// No parameters: the default ABR player consumes the flow's
			// throughput series.
			if f.App.FileMBytes != 0 || f.App.SourceMbps != 0 {
				return fmt.Errorf("video app takes no parameters (got file_mbytes %g, source_mbps %g)",
					f.App.FileMBytes, f.App.SourceMbps)
			}
		default:
			return fmt.Errorf("unknown app kind %q (want bulk, rtc or video)", f.App.Kind)
		}
	}
	return nil
}

func (c Cross) validate() error {
	if !finitePos(c.RateMbps) {
		return fmt.Errorf("rate_mbps %g must be > 0", c.RateMbps)
	}
	if !finiteNonNeg(c.OnOffSec) {
		return fmt.Errorf("on_off_sec %g must be >= 0", c.OnOffSec)
	}
	if !finiteNonNeg(c.StartSec) {
		return fmt.Errorf("start_sec %g must be >= 0", c.StartSec)
	}
	if c.StopSec != 0 && (!finitePos(c.StopSec) || c.StopSec <= c.StartSec) {
		return fmt.Errorf("stop_sec %g must be 0 or > start_sec %g", c.StopSec, c.StartSec)
	}
	return nil
}
