package scenario

import (
	"fmt"
	"math"

	"mocc/internal/apps"
	"mocc/internal/netsim"
	"mocc/internal/trace"
)

// Engine selects which netsim engine executes a run.
type Engine string

// Engines.
const (
	EngineFast      Engine = "fast"      // packet-train production engine
	EngineReference Engine = "reference" // per-packet seed engine (ground truth)
)

// RunOptions parameterize Run.
type RunOptions struct {
	CompileOptions
	// Engine defaults to EngineFast.
	Engine Engine
}

// FlowResult is one flow's outcome, App.Stats-style.
type FlowResult struct {
	Label  string `json:"label"`
	Scheme string `json:"scheme"`

	Sent      int `json:"sent"`
	Delivered int `json:"delivered"`
	Lost      int `json:"lost"`
	MIs       int `json:"mis"` // monitor intervals completed

	ThroughputMbps float64 `json:"throughput_mbps"`
	AvgRTTms       float64 `json:"avg_rtt_ms"`
	LossRate       float64 `json:"loss_rate"`

	// Completed / CompletionSec report bulk-app (packet budget) termination.
	Completed     bool    `json:"completed,omitempty"`
	CompletionSec float64 `json:"completion_sec,omitempty"`

	// ABR holds the video-app outcome when the flow carries a "video" app.
	ABR *apps.ABRResult `json:"abr,omitempty"`
}

// Result reports one executed scenario.
type Result struct {
	Name        string       `json:"name"`
	Engine      Engine       `json:"engine"`
	DurationSec float64      `json:"duration_sec"`
	Flows       []FlowResult `json:"flows"`
	Cross       []FlowResult `json:"cross,omitempty"`
}

// network abstracts the two engines' identical driving surface.
type network interface {
	AddFlow(cfg netsim.FlowConfig) *netsim.Flow
	Run(duration float64)
}

// execute compiles and runs a spec on the chosen engine, returning the raw
// flows (spec flows first, then cross flows).
func execute(spec *Spec, opt CompileOptions, engine Engine) (*Compiled, []*netsim.Flow, error) {
	c, err := spec.Compile(opt)
	if err != nil {
		return nil, nil, err
	}
	var n network
	switch engine {
	case EngineReference:
		n = netsim.NewReferenceNetwork(c.Link, spec.Seed)
	case EngineFast, "":
		n = netsim.NewNetwork(c.Link, spec.Seed)
	default:
		return nil, nil, fmt.Errorf("scenario: unknown engine %q (want %q or %q)", engine, EngineFast, EngineReference)
	}
	flows := make([]*netsim.Flow, len(c.Flows))
	for i, cfg := range c.Flows {
		flows[i] = n.AddFlow(cfg)
	}
	n.Run(c.Duration)
	return c, flows, nil
}

// Run executes a spec end-to-end on the packet-level simulator and reduces
// each flow to its summary (plus ABR post-processing for video-app flows).
func Run(spec *Spec, opt RunOptions) (*Result, error) {
	c, flows, err := execute(spec, opt.CompileOptions, opt.Engine)
	if err != nil {
		return nil, err
	}
	engine := opt.Engine
	if engine == "" {
		engine = EngineFast
	}
	res := &Result{Name: spec.Name, Engine: engine, DurationSec: c.Duration}
	for i, f := range flows {
		var sf *Flow
		scheme := "cross"
		if i < c.NumFlows {
			sf = &spec.Flows[i]
			scheme = sf.Scheme
		}
		fr, err := summarizeFlow(f, sf, scheme, c)
		if err != nil {
			return nil, err
		}
		if i < c.NumFlows {
			res.Flows = append(res.Flows, fr)
		} else {
			res.Cross = append(res.Cross, fr)
		}
	}
	return res, nil
}

// summarizeFlow reduces one netsim flow to a FlowResult over its active
// window.
func summarizeFlow(f *netsim.Flow, sf *Flow, scheme string, c *Compiled) (FlowResult, error) {
	start := f.Cfg.Start
	end := c.Duration
	if f.Cfg.Stop > 0 && f.Cfg.Stop < end {
		end = f.Cfg.Stop
	}
	if f.Completed && f.CompletionTime < end {
		end = f.CompletionTime
	}
	elapsed := math.Max(end-start, 1e-9)

	fr := FlowResult{
		Label:          f.Label,
		Scheme:         scheme,
		Sent:           f.SentTotal,
		Delivered:      f.DeliveredTotal,
		Lost:           f.LostTotal,
		MIs:            len(f.Stats),
		ThroughputMbps: trace.PktsPerSecToMbps(float64(f.DeliveredTotal)/elapsed, c.PktBytes),
		Completed:      f.Completed,
	}
	if f.Completed {
		fr.CompletionSec = f.CompletionTime
	}
	if f.DeliveredTotal > 0 {
		fr.AvgRTTms = f.SumRTT / float64(f.DeliveredTotal) * 1000
	}
	if f.SentTotal > 0 {
		fr.LossRate = float64(f.LostTotal) / float64(f.SentTotal)
	}
	if sf != nil && sf.App != nil && sf.App.Kind == "video" {
		series := f.ThroughputSeries(1, c.Duration)
		mbps := make([]float64, len(series))
		for i, p := range series {
			mbps[i] = trace.PktsPerSecToMbps(p, c.PktBytes)
		}
		abr, err := apps.SimulateABR(mbps, apps.DefaultABRConfig())
		if err != nil {
			return FlowResult{}, fmt.Errorf("scenario: video app on flow %q: %w", f.Label, err)
		}
		fr.ABR = &abr
	}
	return fr, nil
}
