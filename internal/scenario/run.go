package scenario

import (
	"fmt"
	"math"

	"mocc/internal/apps"
	"mocc/internal/netsim"
	"mocc/internal/topo"
	"mocc/internal/trace"
)

// Engine selects which simulator engine executes a run. The same pair
// exists on both lowering targets: netsim for single-bottleneck specs, topo
// for topology specs.
type Engine string

// Engines.
const (
	EngineFast      Engine = "fast"      // packet-train / sharded production engine
	EngineReference Engine = "reference" // per-packet seed engine (ground truth)
)

// RunOptions parameterize Run.
type RunOptions struct {
	CompileOptions
	// Engine defaults to EngineFast.
	Engine Engine
	// Workers sets the topology engine's worker-pool size (<= 0 selects
	// GOMAXPROCS). Results are bit-identical at every setting; single-link
	// specs ignore it.
	Workers int
}

// FlowResult is one flow's outcome, App.Stats-style.
type FlowResult struct {
	Label  string `json:"label"`
	Scheme string `json:"scheme"`

	Sent      int `json:"sent"`
	Delivered int `json:"delivered"`
	Lost      int `json:"lost"`
	MIs       int `json:"mis"` // monitor intervals completed

	ThroughputMbps float64 `json:"throughput_mbps"`
	AvgRTTms       float64 `json:"avg_rtt_ms"`
	LossRate       float64 `json:"loss_rate"`

	// Completed / CompletionSec report bulk-app (packet budget) termination.
	Completed     bool    `json:"completed,omitempty"`
	CompletionSec float64 `json:"completion_sec,omitempty"`

	// ABR holds the video-app outcome when the flow carries a "video" app.
	ABR *apps.ABRResult `json:"abr,omitempty"`
}

// Result reports one executed scenario.
type Result struct {
	Name        string       `json:"name"`
	Engine      Engine       `json:"engine"`
	DurationSec float64      `json:"duration_sec"`
	Flows       []FlowResult `json:"flows"`
	Cross       []FlowResult `json:"cross,omitempty"`
}

// flowOutcome is the engine-neutral view of one executed flow: everything
// the summaries, invariant checks and differential fuzzer consume, filled
// identically from a netsim.Flow or a topo.Flow.
type flowOutcome struct {
	Label          string
	Start, Stop    float64
	Sent           int
	Delivered      int
	Lost           int
	Completed      bool
	CompletionTime float64
	SumRTT         float64
	Stats          []netsim.MIStat
}

func outcomeFromNetsim(f *netsim.Flow) flowOutcome {
	return flowOutcome{
		Label: f.Label, Start: f.Cfg.Start, Stop: f.Cfg.Stop,
		Sent: f.SentTotal, Delivered: f.DeliveredTotal, Lost: f.LostTotal,
		Completed: f.Completed, CompletionTime: f.CompletionTime,
		SumRTT: f.SumRTT, Stats: f.Stats,
	}
}

func outcomeFromTopo(f *topo.Flow) flowOutcome {
	return flowOutcome{
		Label: f.Label, Start: f.Cfg.Start, Stop: f.Cfg.Stop,
		Sent: f.SentTotal, Delivered: f.DeliveredTotal, Lost: f.LostTotal,
		Completed: f.Completed, CompletionTime: f.CompletionTime,
		SumRTT: f.SumRTT, Stats: f.Stats,
	}
}

// throughputSeries buckets an outcome's per-MI delivery counts into a
// fixed-width rate series (pkts/s) — netsim.Flow.ThroughputSeries lifted to
// the neutral view so video-app post-processing works on both engines.
func (o *flowOutcome) throughputSeries(bucket, horizon float64) []float64 {
	nB := int(math.Ceil(horizon / bucket))
	out := make([]float64, nB)
	for _, s := range o.Stats {
		idx := int(s.Time / bucket)
		if idx >= 0 && idx < nB {
			out[idx] += s.Delivered
		}
	}
	for i := range out {
		out[i] /= bucket
	}
	return out
}

// network abstracts the two netsim engines' identical driving surface.
type network interface {
	AddFlow(cfg netsim.FlowConfig) *netsim.Flow
	Run(duration float64)
}

// topoNetwork abstracts the two topo engines likewise.
type topoNetwork interface {
	AddFlow(cfg topo.FlowConfig) *topo.Flow
	Run(duration float64)
}

// execute compiles and runs a single-bottleneck spec on the chosen netsim
// engine, returning the raw flows (spec flows first, then cross flows).
func execute(spec *Spec, opt CompileOptions, engine Engine) (*Compiled, []*netsim.Flow, error) {
	c, err := spec.Compile(opt)
	if err != nil {
		return nil, nil, err
	}
	var n network
	switch engine {
	case EngineReference:
		n = netsim.NewReferenceNetwork(c.Link, spec.Seed)
	case EngineFast, "":
		n = netsim.NewNetwork(c.Link, spec.Seed)
	default:
		return nil, nil, fmt.Errorf("scenario: unknown engine %q (want %q or %q)", engine, EngineFast, EngineReference)
	}
	flows := make([]*netsim.Flow, len(c.Flows))
	for i, cfg := range c.Flows {
		flows[i] = n.AddFlow(cfg)
	}
	n.Run(c.Duration)
	return c, flows, nil
}

// executeTopo compiles and runs a topology spec on the chosen topo engine.
func executeTopo(spec *Spec, opt CompileOptions, engine Engine, workers int) (*CompiledTopo, []*topo.Flow, error) {
	c, err := spec.CompileTopo(opt)
	if err != nil {
		return nil, nil, err
	}
	var n topoNetwork
	switch engine {
	case EngineReference:
		n = topo.NewReference(c.Topo, spec.Seed)
	case EngineFast, "":
		e := topo.NewEngine(c.Topo, spec.Seed)
		e.Workers = workers
		n = e
	default:
		return nil, nil, fmt.Errorf("scenario: unknown engine %q (want %q or %q)", engine, EngineFast, EngineReference)
	}
	flows := make([]*topo.Flow, len(c.Flows))
	for i, cfg := range c.Flows {
		flows[i] = n.AddFlow(cfg)
	}
	n.Run(c.Duration)
	return c, flows, nil
}

// Run executes a spec end-to-end — single-bottleneck specs on netsim,
// topology specs on the sharded topo engine — checks the physical
// invariants, and reduces each flow to its summary (plus ABR
// post-processing for video-app flows).
func Run(spec *Spec, opt RunOptions) (*Result, error) {
	var (
		outcomes []flowOutcome
		phys     physical
		numFlows int
		duration float64
		pkt      int
	)
	if spec.Topology() {
		c, flows, err := executeTopo(spec, opt.CompileOptions, opt.Engine, opt.Workers)
		if err != nil {
			return nil, err
		}
		outcomes = make([]flowOutcome, len(flows))
		for i, f := range flows {
			outcomes[i] = outcomeFromTopo(f)
		}
		phys = c.physical()
		numFlows, duration, pkt = c.NumFlows, c.Duration, c.PktBytes
	} else {
		c, flows, err := execute(spec, opt.CompileOptions, opt.Engine)
		if err != nil {
			return nil, err
		}
		outcomes = make([]flowOutcome, len(flows))
		for i, f := range flows {
			outcomes[i] = outcomeFromNetsim(f)
		}
		phys = c.physical()
		numFlows, duration, pkt = c.NumFlows, c.Duration, c.PktBytes
	}
	if err := phys.check(outcomes); err != nil {
		return nil, fmt.Errorf("scenario %q: physical invariant violated: %w", spec.Name, err)
	}

	engine := opt.Engine
	if engine == "" {
		engine = EngineFast
	}
	res := &Result{Name: spec.Name, Engine: engine, DurationSec: duration}
	for i := range outcomes {
		var sf *Flow
		scheme := "cross"
		if i < numFlows {
			sf = &spec.Flows[i]
			scheme = sf.Scheme
		}
		fr, err := summarizeFlow(&outcomes[i], sf, scheme, duration, pkt)
		if err != nil {
			return nil, err
		}
		if i < numFlows {
			res.Flows = append(res.Flows, fr)
		} else {
			res.Cross = append(res.Cross, fr)
		}
	}
	return res, nil
}

// summarizeFlow reduces one flow outcome to a FlowResult over its active
// window.
func summarizeFlow(o *flowOutcome, sf *Flow, scheme string, duration float64, pktBytes int) (FlowResult, error) {
	start := o.Start
	end := duration
	if o.Stop > 0 && o.Stop < end {
		end = o.Stop
	}
	if o.Completed && o.CompletionTime < end {
		end = o.CompletionTime
	}
	elapsed := math.Max(end-start, 1e-9)

	fr := FlowResult{
		Label:          o.Label,
		Scheme:         scheme,
		Sent:           o.Sent,
		Delivered:      o.Delivered,
		Lost:           o.Lost,
		MIs:            len(o.Stats),
		ThroughputMbps: trace.PktsPerSecToMbps(float64(o.Delivered)/elapsed, pktBytes),
		Completed:      o.Completed,
	}
	if o.Completed {
		fr.CompletionSec = o.CompletionTime
	}
	if o.Delivered > 0 {
		fr.AvgRTTms = o.SumRTT / float64(o.Delivered) * 1000
	}
	if o.Sent > 0 {
		fr.LossRate = float64(o.Lost) / float64(o.Sent)
	}
	if sf != nil && sf.App != nil && sf.App.Kind == "video" {
		series := o.throughputSeries(1, duration)
		mbps := make([]float64, len(series))
		for i, p := range series {
			mbps[i] = trace.PktsPerSecToMbps(p, pktBytes)
		}
		abr, err := apps.SimulateABR(mbps, apps.DefaultABRConfig())
		if err != nil {
			return FlowResult{}, fmt.Errorf("scenario: video app on flow %q: %w", o.Label, err)
		}
		fr.ABR = &abr
	}
	return fr, nil
}
