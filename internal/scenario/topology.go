package scenario

import (
	"fmt"
	"math"

	"mocc/internal/cc"
	"mocc/internal/topo"
	"mocc/internal/trace"
)

// CompiledTopo is a topology spec lowered onto the multi-link simulator:
// the topo.Topology plus one topo flow per spec flow (in order) followed by
// one fixed/on-off flow per cross-traffic entry — the multi-link mirror of
// Compiled.
type CompiledTopo struct {
	Spec     *Spec
	Topo     *topo.Topology
	Flows    []topo.FlowConfig // Spec.Flows first, then Spec.Cross
	NumFlows int               // prefix of Flows that are application flows
	Duration float64
	PktBytes int
	// LinkPeaks holds each link's peak capacity in pkts/s (same order as
	// Topo.Links) — the per-link throughput invariant checks against it.
	LinkPeaks []float64
}

// CompileTopo lowers a topology spec onto topo configurations. Each call
// constructs fresh controller instances, so a spec can be compiled once per
// engine in a differential run. Specs without a links section must go
// through Compile instead.
func (s *Spec) CompileTopo(opt CompileOptions) (*CompiledTopo, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.Topology() {
		return nil, fmt.Errorf("scenario %q: CompileTopo needs a links section (single-bottleneck specs compile via Compile)", s.Name)
	}
	pkt := pktBytes(s, opt)

	links := make([]topo.LinkConfig, len(s.Links))
	peaks := make([]float64, len(s.Links))
	for i, l := range s.Links {
		bw, err := s.linkBandwidth(l, opt.BaseDir, pkt)
		if err != nil {
			return nil, err
		}
		// Same outage-floor lowering as the netsim path: the topo link model
		// shares netsim's admission-priced virtual queue, so true zero-rate
		// segments would black the link out beyond the outage itself.
		bw, err = netsimBandwidth(bw)
		if err != nil {
			return nil, err
		}
		links[i] = topo.LinkConfig{
			Name:      l.Name,
			Capacity:  bw,
			Delay:     l.DelayMs / 1000,
			QueuePkts: l.QueuePkts,
			LossRate:  l.LossRate,
		}
		peaks[i] = peakCapacity(bw)
	}
	t, err := topo.New(links)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	c := &CompiledTopo{
		Spec:      s,
		Topo:      t,
		NumFlows:  len(s.Flows),
		Duration:  s.DurationSec,
		PktBytes:  pkt,
		LinkPeaks: peaks,
	}
	resolve := func(path []string) ([]int, float64) {
		idx := make([]int, len(path))
		minPeak := math.Inf(1)
		for i, name := range path {
			idx[i] = s.linkIndex(name)
			if p := peaks[idx[i]]; p < minPeak {
				minPeak = p
			}
		}
		return idx, minPeak
	}
	for i, f := range s.Flows {
		alg, err := s.algorithm(f, opt, pkt)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: flow %d: %w", s.Name, i, err)
		}
		label := f.Label
		if label == "" {
			label = fmt.Sprintf("%s-%d", f.Scheme, i)
		}
		path, minPeak := resolve(f.Path)
		cfg := topo.FlowConfig{
			Label: label,
			Alg:   alg,
			Path:  path,
			Start: f.StartSec,
			Stop:  f.StopSec,
			MIms:  f.MIms,
			// Cap against the PATH's minimum peak: the narrowest link on the
			// path binds the flow, exactly as Compile caps against the single
			// bottleneck's peak.
			MaxRate: 4 * minPeak,
			Seed:    flowSeed(s.Seed, i, f.Seed),
		}
		if f.Scheme == "fixed" && f.RateMbps > 0 {
			cfg.MaxRate = math.Max(cfg.MaxRate, 2*trace.MbpsToPktsPerSec(f.RateMbps, pkt))
		}
		if f.App != nil && f.App.Kind == "rtc" {
			cfg.MaxRate = math.Max(cfg.MaxRate, 2*trace.MbpsToPktsPerSec(f.App.SourceMbps, pkt))
		}
		if f.App != nil && f.App.Kind == "bulk" {
			cfg.PacketBudget = int(f.App.FileMBytes * 1e6 / float64(pkt))
			if cfg.PacketBudget < 1 {
				cfg.PacketBudget = 1
			}
		}
		c.Flows = append(c.Flows, cfg)
	}
	for i, x := range s.Cross {
		rate := trace.MbpsToPktsPerSec(x.RateMbps, pkt)
		var alg cc.Algorithm
		if x.OnOffSec > 0 {
			alg = &onOffRate{rate: rate, halfPeriod: x.OnOffSec}
		} else {
			alg = &fixedRate{rate: rate}
		}
		path, _ := resolve(x.Path)
		c.Flows = append(c.Flows, topo.FlowConfig{
			Label:   fmt.Sprintf("cross-%d", i),
			Alg:     alg,
			Path:    path,
			Start:   x.StartSec,
			Stop:    x.StopSec,
			MaxRate: 2 * rate,
			Seed:    flowSeed(s.Seed, len(s.Flows)+i, 0),
		})
	}
	return c, nil
}

// pathOWDSec returns the one-way propagation delay (seconds) of the i-th
// compiled flow's path — the floor every RTT invariant compares against.
func (c *CompiledTopo) pathOWDSec(i int) float64 {
	return c.Topo.PathDelay(c.Flows[i].Path)
}
