package scenario

import "fmt"

// DiffEngines compiles the spec twice (fresh controller state per engine),
// runs it through both the production engine and the per-packet reference
// engine with the same seed — netsim for single-bottleneck specs, the
// sharded topo engine for topology specs — and compares every observable
// bitwise: totals, completion, accumulated RTT and the full per-flow
// monitor-interval series. Both runs are additionally checked against the
// engine-independent physical invariants (packet conservation, the path
// propagation RTT floor, per-link capacity), which catch bugs a
// differential comparison cannot: both engines being wrong the same way.
// It returns nil when everything holds, and a descriptive error naming the
// first divergence otherwise. The returned packet count (total sent across
// flows) sizes fuzz budgets.
func DiffEngines(spec *Spec, opt CompileOptions) (packets int, err error) {
	var fast, ref []flowOutcome
	var phys physical
	if spec.Topology() {
		cf, ff, err := executeTopo(spec, opt, EngineFast, 0)
		if err != nil {
			return 0, err
		}
		_, rf, err := executeTopo(spec, opt, EngineReference, 0)
		if err != nil {
			return 0, err
		}
		fast = make([]flowOutcome, len(ff))
		ref = make([]flowOutcome, len(rf))
		for i := range ff {
			fast[i] = outcomeFromTopo(ff[i])
		}
		for i := range rf {
			ref[i] = outcomeFromTopo(rf[i])
		}
		phys = cf.physical()
	} else {
		cf, ff, err := execute(spec, opt, EngineFast)
		if err != nil {
			return 0, err
		}
		_, rf, err := execute(spec, opt, EngineReference)
		if err != nil {
			return 0, err
		}
		fast = make([]flowOutcome, len(ff))
		ref = make([]flowOutcome, len(rf))
		for i := range ff {
			fast[i] = outcomeFromNetsim(ff[i])
		}
		for i := range rf {
			ref[i] = outcomeFromNetsim(rf[i])
		}
		phys = cf.physical()
	}
	for i := range fast {
		packets += fast[i].Sent
	}
	if err := diffFlows(fast, ref); err != nil {
		return packets, fmt.Errorf("scenario %q: engines diverge: %w", spec.Name, err)
	}
	if err := phys.check(fast); err != nil {
		return packets, fmt.Errorf("scenario %q: fast engine violates physics: %w", spec.Name, err)
	}
	if err := phys.check(ref); err != nil {
		return packets, fmt.Errorf("scenario %q: reference engine violates physics: %w", spec.Name, err)
	}
	return packets, nil
}

// diffFlows compares the two engines' flow outcomes bitwise.
func diffFlows(fast, ref []flowOutcome) error {
	if len(fast) != len(ref) {
		return fmt.Errorf("flow count %d vs %d", len(fast), len(ref))
	}
	for i := range fast {
		a, b := &fast[i], &ref[i]
		switch {
		case a.Sent != b.Sent:
			return fmt.Errorf("flow %d (%s): SentTotal fast=%d ref=%d", i, a.Label, a.Sent, b.Sent)
		case a.Delivered != b.Delivered:
			return fmt.Errorf("flow %d (%s): DeliveredTotal fast=%d ref=%d", i, a.Label, a.Delivered, b.Delivered)
		case a.Lost != b.Lost:
			return fmt.Errorf("flow %d (%s): LostTotal fast=%d ref=%d", i, a.Label, a.Lost, b.Lost)
		case a.Completed != b.Completed:
			return fmt.Errorf("flow %d (%s): Completed fast=%v ref=%v", i, a.Label, a.Completed, b.Completed)
		case a.CompletionTime != b.CompletionTime:
			return fmt.Errorf("flow %d (%s): CompletionTime fast=%v ref=%v", i, a.Label, a.CompletionTime, b.CompletionTime)
		case a.SumRTT != b.SumRTT:
			return fmt.Errorf("flow %d (%s): SumRTT fast=%v ref=%v", i, a.Label, a.SumRTT, b.SumRTT)
		case len(a.Stats) != len(b.Stats):
			return fmt.Errorf("flow %d (%s): MI count fast=%d ref=%d", i, a.Label, len(a.Stats), len(b.Stats))
		}
		for j := range a.Stats {
			if a.Stats[j] != b.Stats[j] {
				return fmt.Errorf("flow %d (%s): MI %d differs:\n  fast: %+v\n  ref:  %+v",
					i, a.Label, j, a.Stats[j], b.Stats[j])
			}
		}
	}
	return nil
}

// FuzzConfig parameterizes a differential fuzz run.
type FuzzConfig struct {
	// N is the number of generated scenarios to diff.
	N int
	// Seed offsets the generator.
	Seed int64
	// Families restricts the rotation (default: the single-bottleneck
	// families, or the topology families when Topo is set).
	Families []Family
	// Topo switches the default rotation to the topology families,
	// exercising the multi-link engines and the sharded/reference diff.
	Topo bool
	// Progress, when set, is invoked after each scenario.
	Progress func(i int, spec *Spec, packets int)
}

// FuzzResult summarizes a clean fuzz run.
type FuzzResult struct {
	Scenarios int
	Packets   int // total packets pushed through EACH engine
}

// Fuzz drives the seeded generator through DiffEngines N times — the
// generator as an engine-equivalence fuzzer. It stops at the first
// divergence or invariant violation, returning an error that names the
// scenario (family + seed), so `mocc-scen fuzz` reproduces it with
// `describe`/`run`.
func Fuzz(cfg FuzzConfig) (FuzzResult, error) {
	if cfg.N <= 0 {
		cfg.N = 25
	}
	families := cfg.Families
	if len(families) == 0 && cfg.Topo {
		families = TopoFamilies()
	}
	gen := Generator{Families: families, Seed: cfg.Seed}
	var res FuzzResult
	for i := 0; i < cfg.N; i++ {
		spec, err := gen.Spec(i)
		if err != nil {
			return res, err
		}
		packets, err := DiffEngines(spec, CompileOptions{})
		if err != nil {
			return res, err
		}
		res.Scenarios++
		res.Packets += packets
		if cfg.Progress != nil {
			cfg.Progress(i, spec, packets)
		}
	}
	return res, nil
}
