package scenario

import (
	"fmt"

	"mocc/internal/netsim"
)

// DiffEngines compiles the spec twice (fresh controller state per engine),
// runs it through both the packet-train production engine and the
// per-packet reference engine with the same seed, and compares every
// observable bitwise: totals, completion, accumulated RTT and the full
// per-flow monitor-interval series. It returns nil when the engines agree
// exactly, and a descriptive error naming the first divergence otherwise.
// The returned packet count (total sent across flows) sizes fuzz budgets.
func DiffEngines(spec *Spec, opt CompileOptions) (packets int, err error) {
	_, fast, err := execute(spec, opt, EngineFast)
	if err != nil {
		return 0, err
	}
	_, ref, err := execute(spec, opt, EngineReference)
	if err != nil {
		return 0, err
	}
	for _, f := range fast {
		packets += f.SentTotal
	}
	if err := diffFlows(fast, ref); err != nil {
		return packets, fmt.Errorf("scenario %q: engines diverge: %w", spec.Name, err)
	}
	return packets, nil
}

// diffFlows compares the two engines' flow results bitwise.
func diffFlows(fast, ref []*netsim.Flow) error {
	if len(fast) != len(ref) {
		return fmt.Errorf("flow count %d vs %d", len(fast), len(ref))
	}
	for i := range fast {
		a, b := fast[i], ref[i]
		switch {
		case a.SentTotal != b.SentTotal:
			return fmt.Errorf("flow %d (%s): SentTotal fast=%d ref=%d", i, a.Label, a.SentTotal, b.SentTotal)
		case a.DeliveredTotal != b.DeliveredTotal:
			return fmt.Errorf("flow %d (%s): DeliveredTotal fast=%d ref=%d", i, a.Label, a.DeliveredTotal, b.DeliveredTotal)
		case a.LostTotal != b.LostTotal:
			return fmt.Errorf("flow %d (%s): LostTotal fast=%d ref=%d", i, a.Label, a.LostTotal, b.LostTotal)
		case a.Completed != b.Completed:
			return fmt.Errorf("flow %d (%s): Completed fast=%v ref=%v", i, a.Label, a.Completed, b.Completed)
		case a.CompletionTime != b.CompletionTime:
			return fmt.Errorf("flow %d (%s): CompletionTime fast=%v ref=%v", i, a.Label, a.CompletionTime, b.CompletionTime)
		case a.SumRTT != b.SumRTT:
			return fmt.Errorf("flow %d (%s): SumRTT fast=%v ref=%v", i, a.Label, a.SumRTT, b.SumRTT)
		case len(a.Stats) != len(b.Stats):
			return fmt.Errorf("flow %d (%s): MI count fast=%d ref=%d", i, a.Label, len(a.Stats), len(b.Stats))
		}
		for j := range a.Stats {
			if a.Stats[j] != b.Stats[j] {
				return fmt.Errorf("flow %d (%s): MI %d differs:\n  fast: %+v\n  ref:  %+v",
					i, a.Label, j, a.Stats[j], b.Stats[j])
			}
		}
	}
	return nil
}

// FuzzConfig parameterizes a differential fuzz run.
type FuzzConfig struct {
	// N is the number of generated scenarios to diff.
	N int
	// Seed offsets the generator.
	Seed int64
	// Families restricts the rotation (default: all).
	Families []Family
	// Progress, when set, is invoked after each scenario.
	Progress func(i int, spec *Spec, packets int)
}

// FuzzResult summarizes a clean fuzz run.
type FuzzResult struct {
	Scenarios int
	Packets   int // total packets pushed through EACH engine
}

// Fuzz drives the seeded generator through DiffEngines N times — the
// generator as an engine-equivalence fuzzer. It stops at the first
// divergence, returning an error that names the scenario (family + seed),
// so `mocc-scen fuzz` reproduces it with `describe`/`run`.
func Fuzz(cfg FuzzConfig) (FuzzResult, error) {
	if cfg.N <= 0 {
		cfg.N = 25
	}
	gen := Generator{Families: cfg.Families, Seed: cfg.Seed}
	var res FuzzResult
	for i := 0; i < cfg.N; i++ {
		spec, err := gen.Spec(i)
		if err != nil {
			return res, err
		}
		packets, err := DiffEngines(spec, CompileOptions{})
		if err != nil {
			return res, err
		}
		res.Scenarios++
		res.Packets += packets
		if cfg.Progress != nil {
			cfg.Progress(i, spec, packets)
		}
	}
	return res, nil
}
