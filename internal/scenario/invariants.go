package scenario

import "fmt"

// physical captures the engine-independent facts a compiled scenario pins
// down — run length, each flow's propagation floor, and each link's peak
// service rate — against which every executed run is checked. The checks
// hold for ANY correct engine, so they catch bugs even when a differential
// pair agrees (both engines wrong the same way), and they are cheap enough
// to run on every Run and every fuzz iteration, single- and multi-link.
type physical struct {
	duration  float64
	pathOWD   []float64 // per flow: one-way propagation delay of its path (s)
	linkPeaks []float64 // per link: peak capacity (pkts/s)
	flowLinks [][]int   // per flow: link indices its path traverses
}

// physical derives the invariant context of a single-bottleneck compile:
// one link, every flow crossing it.
func (c *Compiled) physical() physical {
	p := physical{
		duration:  c.Duration,
		pathOWD:   make([]float64, len(c.Flows)),
		linkPeaks: []float64{peakCapacity(c.Link.Capacity)},
		flowLinks: make([][]int, len(c.Flows)),
	}
	for i := range c.Flows {
		p.pathOWD[i] = c.Link.OWD
		p.flowLinks[i] = []int{0}
	}
	return p
}

// physical derives the invariant context of a topology compile.
func (c *CompiledTopo) physical() physical {
	p := physical{
		duration:  c.Duration,
		pathOWD:   make([]float64, len(c.Flows)),
		linkPeaks: c.LinkPeaks,
		flowLinks: make([][]int, len(c.Flows)),
	}
	for i := range c.Flows {
		p.pathOWD[i] = c.pathOWDSec(i)
		p.flowLinks[i] = c.Flows[i].Path
	}
	return p
}

// rttSlack absorbs float rounding in RTT comparisons (the propagation floor
// is itself a sum of the same float delays the engines add).
const rttSlack = 1e-9

// check verifies the physical invariants over one executed run's outcomes:
//
//  1. Packet conservation — no flow delivers or loses packets it never
//     sent, in the totals and in the per-MI series.
//  2. RTT floor — no packet (and hence no average) beats its path's
//     round-trip propagation delay.
//  3. Link capacity — no link delivers more than its peak service rate
//     times the run length (+1 packet in flight at each boundary).
func (p physical) check(outcomes []flowOutcome) error {
	if len(outcomes) != len(p.pathOWD) {
		return fmt.Errorf("outcome count %d does not match compiled flow count %d", len(outcomes), len(p.pathOWD))
	}
	linkDelivered := make([]float64, len(p.linkPeaks))
	for i := range outcomes {
		o := &outcomes[i]
		if o.Delivered+o.Lost > o.Sent {
			return fmt.Errorf("flow %d (%s): delivered %d + lost %d exceeds sent %d (packets created from nothing)",
				i, o.Label, o.Delivered, o.Lost, o.Sent)
		}
		var miSent, miDelivered, miLost float64
		for j, s := range o.Stats {
			miSent += s.Sent
			miDelivered += s.Delivered
			miLost += s.Lost
			if s.Delivered > 0 && s.AvgRTT < 2*p.pathOWD[i]-rttSlack {
				return fmt.Errorf("flow %d (%s): MI %d AvgRTT %.9gs beats the path propagation floor %.9gs",
					i, o.Label, j, s.AvgRTT, 2*p.pathOWD[i])
			}
		}
		const countSlack = 1e-6 // MI counters are float64 sums of integers
		if miSent > float64(o.Sent)+countSlack || miDelivered > float64(o.Delivered)+countSlack || miLost > float64(o.Lost)+countSlack {
			return fmt.Errorf("flow %d (%s): MI series totals (sent %g, delivered %g, lost %g) exceed flow totals (%d, %d, %d)",
				i, o.Label, miSent, miDelivered, miLost, o.Sent, o.Delivered, o.Lost)
		}
		if o.Delivered > 0 {
			avg := o.SumRTT / float64(o.Delivered)
			if avg < 2*p.pathOWD[i]-rttSlack {
				return fmt.Errorf("flow %d (%s): average RTT %.9gs beats the path propagation floor %.9gs",
					i, o.Label, avg, 2*p.pathOWD[i])
			}
		}
		for _, li := range p.flowLinks[i] {
			linkDelivered[li] += float64(o.Delivered)
		}
	}
	for li, sum := range linkDelivered {
		// Departures from one link are spaced at least 1/peak apart, so at
		// most peak*duration+1 packets can clear it; delivered packets on
		// each path consumed one departure per traversed link.
		limit := p.linkPeaks[li]*p.duration*(1+1e-9) + 2
		if sum > limit {
			return fmt.Errorf("link %d: %g packets delivered through it exceed peak capacity %g pkts/s over %gs (limit %g)",
				li, sum, p.linkPeaks[li], p.duration, limit)
		}
	}
	return nil
}
