package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"mocc/internal/gym"
	"mocc/internal/trace"
)

// Family names a generator scenario family.
type Family string

// Generator families, modelled on the link classes the paper's evaluation
// (and the Pantheon/Mahimahi testbeds it leans on) exercises.
const (
	Cellular      Family = "cellular"          // fading random-walk capacity, moderate RTT
	Wifi          Family = "wifi"              // bursty capacity alternation, short RTT
	Satellite     Family = "satellite"         // long RTT, stable capacity, deep buffers
	LossyWireless Family = "lossy-wireless"    // high random loss over a fading link
	Incast        Family = "datacenter-incast" // many synchronized senders, shallow buffer, tiny RTT
	FlashCrowd    Family = "flash-crowd"       // staggered flow arrivals, mixed schemes and transfers
)

// Topology families: multi-link (version 2) scenarios lowered onto the
// sharded topo engine instead of netsim.
const (
	ParkingLot Family = "parking-lot" // two bottlenecks in series, one long + two short flows
	Incast10k  Family = "incast-10k"  // 10k rack-homed senders converging on one core link
)

// Families returns every single-bottleneck generator family in canonical
// order — the default fuzz/training rotation, unchanged by the topology
// families (which carry very different packet budgets).
func Families() []Family {
	return []Family{Cellular, Wifi, Satellite, LossyWireless, Incast, FlashCrowd}
}

// TopoFamilies returns every topology generator family in canonical order.
func TopoFamilies() []Family {
	return []Family{ParkingLot, Incast10k}
}

// AllFamilies returns every generator family, single-bottleneck first.
func AllFamilies() []Family {
	return append(Families(), TopoFamilies()...)
}

// FamilyDescription is a one-line description for CLIs.
func FamilyDescription(f Family) string {
	switch f {
	case Cellular:
		return "fading cellular-like link: multiplicative random-walk capacity 0.5-6 Mbps, 40-120 ms RTT"
	case Wifi:
		return "bursty wifi-like link: capacity alternates 8-25 Mbps bursts with sub-3 Mbps lulls"
	case Satellite:
		return "geostationary-satellite-like link: 400-700 ms RTT, stable capacity, deep buffers"
	case LossyWireless:
		return "lossy wireless link: 1-8% random loss over a fading 1-10 Mbps capacity"
	case Incast:
		return "datacenter incast: 6-14 synchronized senders into a shallow buffer at sub-ms RTT"
	case FlashCrowd:
		return "flash crowd: staggered arrivals of mixed schemes and finite transfers on one bottleneck"
	case ParkingLot:
		return "parking lot: two bottlenecks in series, one long flow crossing both against a short flow on each"
	case Incast10k:
		return "10k-sender incast: rack links fanning into one 80-150 Mbps core link, fixed-rate overload"
	default:
		return "unknown family"
	}
}

// familySeed folds the family name into the scenario seed so two families
// at the same seed draw independent streams, while staying a pure function
// of (family, seed) — the generator's byte-determinism guarantee.
func familySeed(f Family, seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(f))
	return int64(h.Sum64() ^ uint64(seed))
}

// schemePool is the reactive built-in schemes generated scenarios draw
// from; all are model-free, so generated specs compile without a resolver
// (a requirement for the differential fuzz harness).
var schemePool = []string{"cubic", "vegas", "bbr", "copa", "pcc-allegro", "pcc-vivace"}

// uniform draws from [lo, hi) — a shorthand over trace.Range so the
// sampling formula (and thus the byte-determinism guarantee) has a single
// home.
func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return trace.Range{Low: lo, High: hi}.Sample(rng)
}

// intBetween draws from [lo, hi] inclusive.
func intBetween(rng *rand.Rand, lo, hi int) int {
	return lo + rng.Intn(hi-lo+1)
}

// round3 quantizes generated parameters so spec JSON stays compact and the
// declarative form — not float dust — carries the scenario.
func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}

// walkSchedule builds a multiplicative random-walk capacity schedule with
// wraparound, clamped to [loMbps, hiMbps].
func walkSchedule(rng *rand.Rand, loMbps, hiMbps float64, levels int, segLo, segHi, vol float64) ([]Level, float64) {
	out := make([]Level, levels)
	rate := uniform(rng, loMbps, hiMbps)
	t := 0.0
	for i := 0; i < levels; i++ {
		out[i] = Level{AtSec: round3(t), Mbps: round3(rate)}
		t += uniform(rng, segLo, segHi)
		rate *= math.Exp((rng.Float64() - 0.5) * 2 * vol)
		rate = math.Min(math.Max(rate, loMbps), hiMbps)
	}
	return out, round3(t)
}

// burstSchedule alternates high-rate bursts with low-rate lulls.
func burstSchedule(rng *rand.Rand, lullLo, lullHi, burstLo, burstHi float64, levels int, segLo, segHi float64) ([]Level, float64) {
	out := make([]Level, levels)
	t := 0.0
	for i := 0; i < levels; i++ {
		mbps := uniform(rng, lullLo, lullHi)
		if i%2 == 0 {
			mbps = uniform(rng, burstLo, burstHi)
		}
		out[i] = Level{AtSec: round3(t), Mbps: round3(mbps)}
		t += uniform(rng, segLo, segHi)
	}
	return out, round3(t)
}

// Generate produces the deterministic scenario (family, seed) names: the
// same pair yields byte-identical spec JSON on every run and platform.
func Generate(f Family, seed int64) (*Spec, error) {
	rng := rand.New(rand.NewSource(familySeed(f, seed)))
	s := &Spec{
		Version:     SpecVersion,
		Name:        fmt.Sprintf("%s/%d", f, seed),
		Description: FamilyDescription(f),
		Family:      string(f),
		Seed:        seed,
	}
	switch f {
	case Cellular:
		genCellular(rng, s)
	case Wifi:
		genWifi(rng, s)
	case Satellite:
		genSatellite(rng, s)
	case LossyWireless:
		genLossyWireless(rng, s)
	case Incast:
		genIncast(rng, s)
	case FlashCrowd:
		genFlashCrowd(rng, s)
	case ParkingLot:
		genParkingLot(rng, s)
	case Incast10k:
		genIncast10k(rng, s)
	default:
		return nil, fmt.Errorf("scenario: unknown family %q (known: %v)", f, AllFamilies())
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generator produced an invalid spec: %w", err)
	}
	return s, nil
}

func pickScheme(rng *rand.Rand) string {
	return schemePool[rng.Intn(len(schemePool))]
}

func genCellular(rng *rand.Rand, s *Spec) {
	s.Link.RTTms = round3(uniform(rng, 40, 120))
	s.Link.QueuePkts = intBetween(rng, 50, 300)
	if rng.Float64() < 0.5 {
		s.Link.LossRate = round3(uniform(rng, 0, 0.01))
	}
	s.Link.Schedule, s.Link.ScheduleLoopSec = walkSchedule(rng, 0.5, 6, intBetween(rng, 8, 14), 0.4, 0.9, 0.45)
	s.DurationSec = round3(uniform(rng, 6, 10))
	nFlows := intBetween(rng, 1, 2)
	for i := 0; i < nFlows; i++ {
		fl := Flow{Scheme: pickScheme(rng)}
		if i > 0 {
			fl.StartSec = round3(uniform(rng, 0.5, 2.5))
		}
		s.Flows = append(s.Flows, fl)
	}
	if rng.Float64() < 0.3 {
		s.Cross = append(s.Cross, Cross{RateMbps: round3(uniform(rng, 0.2, 1.2))})
	}
}

func genWifi(rng *rand.Rand, s *Spec) {
	s.Link.RTTms = round3(uniform(rng, 10, 40))
	s.Link.QueuePkts = intBetween(rng, 100, 400)
	if rng.Float64() < 0.5 {
		s.Link.LossRate = round3(uniform(rng, 0, 0.02))
	}
	s.Link.Schedule, s.Link.ScheduleLoopSec = burstSchedule(rng, 0.5, 3, 8, 25, intBetween(rng, 8, 14), 0.2, 0.6)
	s.DurationSec = round3(uniform(rng, 6, 10))
	nFlows := intBetween(rng, 1, 3)
	for i := 0; i < nFlows; i++ {
		fl := Flow{Scheme: pickScheme(rng)}
		if i > 0 {
			fl.StartSec = round3(uniform(rng, 0.3, 2))
		}
		s.Flows = append(s.Flows, fl)
	}
	if rng.Float64() < 0.3 {
		s.Cross = append(s.Cross, Cross{
			RateMbps: round3(uniform(rng, 0.5, 3)),
			OnOffSec: round3(uniform(rng, 0.5, 2)),
		})
	}
}

func genSatellite(rng *rand.Rand, s *Spec) {
	s.Link.RTTms = round3(uniform(rng, 400, 700))
	s.Link.QueuePkts = intBetween(rng, 300, 1000)
	if rng.Float64() < 0.4 {
		s.Link.LossRate = round3(uniform(rng, 0, 0.005))
	}
	if rng.Float64() < 0.5 {
		s.Link.CapacityMbps = round3(uniform(rng, 2, 20))
	} else {
		// Slow capacity steps (weather / beam handover).
		s.Link.Schedule, s.Link.ScheduleLoopSec = walkSchedule(rng, 2, 20, intBetween(rng, 2, 4), 4, 8, 0.3)
	}
	s.DurationSec = round3(uniform(rng, 14, 18))
	nFlows := intBetween(rng, 1, 2)
	for i := 0; i < nFlows; i++ {
		fl := Flow{Scheme: pickScheme(rng)}
		if i > 0 {
			fl.StartSec = round3(uniform(rng, 1, 4))
		}
		s.Flows = append(s.Flows, fl)
	}
}

func genLossyWireless(rng *rand.Rand, s *Spec) {
	s.Link.RTTms = round3(uniform(rng, 20, 80))
	s.Link.QueuePkts = intBetween(rng, 50, 200)
	s.Link.LossRate = round3(uniform(rng, 0.01, 0.08))
	s.Link.Schedule, s.Link.ScheduleLoopSec = walkSchedule(rng, 1, 10, intBetween(rng, 6, 10), 0.5, 1.2, 0.35)
	s.DurationSec = round3(uniform(rng, 6, 10))
	nFlows := intBetween(rng, 1, 2)
	for i := 0; i < nFlows; i++ {
		fl := Flow{Scheme: pickScheme(rng)}
		if i > 0 {
			fl.StartSec = round3(uniform(rng, 0.5, 2))
		}
		s.Flows = append(s.Flows, fl)
	}
}

func genIncast(rng *rand.Rand, s *Spec) {
	s.Link.RTTms = round3(uniform(rng, 0.2, 2))
	s.Link.QueuePkts = intBetween(rng, 30, 150)
	cap := round3(uniform(rng, 50, 200))
	s.Link.CapacityMbps = cap
	s.DurationSec = round3(uniform(rng, 3, 5))
	n := intBetween(rng, 6, 14)
	// Aggregate offered load 1.5-3x capacity, split evenly: the classic
	// synchronized-sender overload, with fixed-rate senders so the packet
	// count stays bounded for the fuzz harness.
	agg := uniform(rng, 1.5, 3)
	per := round3(cap * agg / float64(n))
	for i := 0; i < n; i++ {
		fl := Flow{
			Scheme:   "fixed",
			RateMbps: per,
			StartSec: round3(uniform(rng, 0, 0.3)),
		}
		if rng.Float64() < 0.3 {
			fl.StopSec = round3(uniform(rng, 0.6*s.DurationSec, s.DurationSec))
		}
		s.Flows = append(s.Flows, fl)
	}
}

func genFlashCrowd(rng *rand.Rand, s *Spec) {
	s.Link.RTTms = round3(uniform(rng, 20, 60))
	s.Link.QueuePkts = intBetween(rng, 200, 800)
	s.Link.CapacityMbps = round3(uniform(rng, 10, 40))
	if rng.Float64() < 0.4 {
		s.Link.LossRate = round3(uniform(rng, 0, 0.005))
	}
	s.DurationSec = round3(uniform(rng, 8, 12))
	n := intBetween(rng, 4, 8)
	for i := 0; i < n; i++ {
		fl := Flow{Scheme: pickScheme(rng)}
		if i > 0 {
			// Arrivals pile up over the first half of the run.
			fl.StartSec = round3(uniform(rng, 0, s.DurationSec/2))
		}
		if rng.Float64() < 0.4 {
			fl.App = &App{Kind: "bulk", FileMBytes: round3(uniform(rng, 0.2, 1))}
		}
		s.Flows = append(s.Flows, fl)
	}
}

// genParkingLot emits the classic two-bottleneck chain: a long flow crosses
// both links while a short flow loads each — the minimal topology where
// multi-link fairness differs from any single-bottleneck reduction.
func genParkingLot(rng *rand.Rand, s *Spec) {
	left := Link{
		Name:         "left",
		DelayMs:      round3(uniform(rng, 5, 20)),
		CapacityMbps: round3(uniform(rng, 8, 30)),
		QueuePkts:    intBetween(rng, 60, 300),
	}
	right := Link{
		Name:         "right",
		DelayMs:      round3(uniform(rng, 5, 20)),
		CapacityMbps: round3(uniform(rng, 8, 30)),
		QueuePkts:    intBetween(rng, 60, 300),
	}
	if rng.Float64() < 0.3 {
		right.LossRate = round3(uniform(rng, 0, 0.01))
	}
	s.Links = []Link{left, right}
	s.DurationSec = round3(uniform(rng, 6, 10))
	s.Flows = []Flow{
		{Scheme: pickScheme(rng), Label: "long", Path: []string{"left", "right"}},
		{Scheme: pickScheme(rng), Label: "short-left", Path: []string{"left"},
			StartSec: round3(uniform(rng, 0.3, 2))},
		{Scheme: pickScheme(rng), Label: "short-right", Path: []string{"right"},
			StartSec: round3(uniform(rng, 0.3, 2))},
	}
}

// genIncast10k emits the scale scenario: 10,000 fixed-rate senders homed on
// a handful of rack links all converging on one core link. Fixed-rate
// senders and an explicit 200 ms monitor interval keep the packet count and
// the MI-series memory bounded while still pushing ~10^5 packets and 10^4
// flows through every engine.
func genIncast10k(rng *rand.Rand, s *Spec) {
	const n = 10000
	racks := intBetween(rng, 4, 8)
	coreMbps := round3(uniform(rng, 80, 150))
	s.Links = make([]Link, 0, racks+1)
	for i := 0; i < racks; i++ {
		s.Links = append(s.Links, Link{
			Name:         fmt.Sprintf("rack%d", i),
			DelayMs:      round3(uniform(rng, 0.25, 1)),
			CapacityMbps: round3(uniform(rng, 0.5, 1) * coreMbps),
			QueuePkts:    intBetween(rng, 60, 200),
		})
	}
	s.Links = append(s.Links, Link{
		Name:         "core",
		DelayMs:      round3(uniform(rng, 0.5, 2)),
		CapacityMbps: coreMbps,
		QueuePkts:    intBetween(rng, 100, 400),
	})
	s.DurationSec = round3(uniform(rng, 1.5, 2.5))
	agg := uniform(rng, 2, 4)
	per := round3(coreMbps * agg / n)
	s.Flows = make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		s.Flows = append(s.Flows, Flow{
			Scheme:   "fixed",
			RateMbps: per,
			StartSec: round3(uniform(rng, 0, 0.3)),
			MIms:     200,
			Path:     []string{fmt.Sprintf("rack%d", i%racks), "core"},
		})
	}
}

// Generator enumerates deterministic scenarios over a set of families:
// scenario i comes from family i mod len(Families) at seed Seed+i. Training
// and evaluation consume it as an open-ended suite instead of a fixed grid.
type Generator struct {
	// Families defaults to Families().
	Families []Family
	// Seed offsets every scenario's seed.
	Seed int64
}

// families resolves the configured family set.
func (g Generator) families() []Family {
	if len(g.Families) > 0 {
		return g.Families
	}
	return Families()
}

// Spec returns the i-th scenario of the suite.
func (g Generator) Spec(i int) (*Spec, error) {
	if i < 0 {
		return nil, fmt.Errorf("scenario: suite index %d must be >= 0", i)
	}
	fams := g.families()
	return Generate(fams[i%len(fams)], g.Seed+int64(i))
}

// EnvFactory adapts the suite to the training stack: one generated
// scenario per environment seed, lowered to the gym's single-flow view.
// The returned function is rl.EnvFactory-compatible. Generated specs never
// reference trace files, so no options are needed. Unknown family names
// error here, at setup, rather than mid-training.
func (g Generator) EnvFactory() (func(seed int64) *gym.Env, error) {
	fams := g.families()
	for _, f := range fams {
		if _, err := Generate(f, 0); err != nil {
			return nil, err
		}
	}
	return func(seed int64) *gym.Env {
		fam := fams[int(uint64(seed)%uint64(len(fams)))]
		spec, err := Generate(fam, g.Seed^seed)
		if err != nil {
			panic(err) // unreachable: families pre-validated above
		}
		cfg, err := spec.Gym(CompileOptions{})
		if err != nil {
			panic(err) // unreachable: generated specs never use trace files
		}
		cfg.HistoryLen = gym.DefaultHistoryLen
		return gym.New(cfg)
	}, nil
}
