package scenario

import (
	"bytes"
	"testing"
)

// TestGeneratorByteDeterminism pins the generator's core guarantee: a fixed
// (family, seed) pair yields byte-identical spec JSON on every run.
func TestGeneratorByteDeterminism(t *testing.T) {
	for _, f := range Families() {
		for seed := int64(0); seed < 5; seed++ {
			a, err := Generate(f, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", f, seed, err)
			}
			b, err := Generate(f, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", f, seed, err)
			}
			ja, err := a.JSON()
			if err != nil {
				t.Fatal(err)
			}
			jb, err := b.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ja, jb) {
				t.Errorf("%s/%d: repeated generation differs:\n%s\nvs\n%s", f, seed, ja, jb)
			}
		}
	}
}

// TestGeneratorSpecsValidAndCompile checks every family over a seed range:
// specs validate, compile without a resolver, and round-trip through JSON.
func TestGeneratorSpecsValidAndCompile(t *testing.T) {
	for _, f := range Families() {
		for seed := int64(0); seed < 10; seed++ {
			s, err := Generate(f, seed)
			if err != nil {
				t.Fatalf("%s/%d: %v", f, seed, err)
			}
			if s.Family != string(f) {
				t.Errorf("%s/%d: Family = %q", f, seed, s.Family)
			}
			c, err := s.Compile(CompileOptions{})
			if err != nil {
				t.Fatalf("%s/%d: compile: %v", f, seed, err)
			}
			if len(c.Flows) == 0 {
				t.Fatalf("%s/%d: no flows", f, seed)
			}
			data, err := s.JSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Parse(data)
			if err != nil {
				t.Fatalf("%s/%d: reparse: %v", f, seed, err)
			}
			if _, err := back.Compile(CompileOptions{}); err != nil {
				t.Fatalf("%s/%d: reparse compile: %v", f, seed, err)
			}
			// The gym view must also lower cleanly (training consumption).
			if _, err := s.Gym(CompileOptions{}); err != nil {
				t.Fatalf("%s/%d: gym view: %v", f, seed, err)
			}
		}
	}
}

// TestGeneratorSeedsDiffer makes sure distinct seeds explore distinct
// scenarios rather than collapsing to one draw.
func TestGeneratorSeedsDiffer(t *testing.T) {
	for _, f := range Families() {
		a, _ := Generate(f, 1)
		b, _ := Generate(f, 2)
		ja, _ := a.JSON()
		jb, _ := b.JSON()
		if bytes.Equal(ja, jb) {
			t.Errorf("%s: seeds 1 and 2 generated identical specs", f)
		}
	}
}

func TestGenerateUnknownFamily(t *testing.T) {
	if _, err := Generate(Family("volcano"), 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestGeneratorSuite exercises the suite enumerator's family rotation.
func TestGeneratorSuite(t *testing.T) {
	g := Generator{Seed: 100}
	if _, err := g.Spec(-1); err == nil {
		t.Fatal("negative suite index accepted")
	}
	fams := Families()
	for i := 0; i < 2*len(fams); i++ {
		s, err := g.Spec(i)
		if err != nil {
			t.Fatal(err)
		}
		if s.Family != string(fams[i%len(fams)]) {
			t.Errorf("suite[%d] family = %s, want %s", i, s.Family, fams[i%len(fams)])
		}
		if s.Seed != 100+int64(i) {
			t.Errorf("suite[%d] seed = %d, want %d", i, s.Seed, 100+int64(i))
		}
	}
}

// TestGeneratorEnvFactory drives a generated environment a few steps — the
// training-stack consumption path.
func TestGeneratorEnvFactory(t *testing.T) {
	if _, err := (Generator{Families: []Family{"celular"}}).EnvFactory(); err == nil {
		t.Fatal("EnvFactory accepted a misspelled family instead of failing at setup")
	}
	factory, err := Generator{Seed: 7}.EnvFactory()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		env := factory(seed)
		for i := 0; i < 5; i++ {
			obs, m := env.Step()
			if len(obs) != env.ObsSize() {
				t.Fatalf("seed %d: obs len %d, want %d", seed, len(obs), env.ObsSize())
			}
			if m.Capacity <= 0 {
				t.Fatalf("seed %d: capacity %g", seed, m.Capacity)
			}
		}
	}
	// Same factory seed, same env behaviour.
	e1, e2 := factory(3), factory(3)
	for i := 0; i < 10; i++ {
		_, m1 := e1.Step()
		_, m2 := e2.Step()
		if m1 != m2 {
			t.Fatalf("step %d: env metrics diverge for identical seeds", i)
		}
	}
}
