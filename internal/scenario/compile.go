package scenario

import (
	"fmt"
	"math"
	"path/filepath"

	"mocc/internal/apps"
	"mocc/internal/cc"
	"mocc/internal/gym"
	"mocc/internal/netsim"
	"mocc/internal/trace"
)

// SchemeResolver maps a flow to a congestion controller. It is consulted
// before the built-in schemes, so callers can wire learned models (the
// pantheon zoo) or custom algorithms; returning (nil, nil) falls through to
// the built-ins.
type SchemeResolver func(f Flow) (cc.Algorithm, error)

// CompileOptions parameterize spec compilation.
type CompileOptions struct {
	// BaseDir resolves relative Link.TraceFile paths (default: the
	// process working directory; Load-based CLIs pass the spec's dir).
	BaseDir string
	// Resolver, when set, is tried first for every flow's scheme.
	Resolver SchemeResolver
	// PktBytes overrides the Mbps<->pkts/s packet size (default 1500).
	PktBytes int
}

// Compiled is a spec lowered onto the packet-level simulator: the netsim
// link plus one netsim flow per spec flow (in order) followed by one
// fixed/on-off flow per cross-traffic entry.
type Compiled struct {
	Spec     *Spec
	Link     netsim.LinkConfig
	Flows    []netsim.FlowConfig // Spec.Flows first, then Spec.Cross
	NumFlows int                 // prefix of Flows that are application flows
	Duration float64
	PktBytes int
}

// pktBytes resolves the effective packet size for a spec + options pair.
func pktBytes(s *Spec, opt CompileOptions) int {
	if opt.PktBytes > 0 {
		return opt.PktBytes
	}
	if s.PktBytes > 0 {
		return s.PktBytes
	}
	return DefaultPktBytes
}

// Bandwidth materializes the single bottleneck's capacity schedule as a
// trace.Bandwidth in pkts/s. Trace files resolve relative to baseDir.
func (s *Spec) Bandwidth(baseDir string, pkt int) (trace.Bandwidth, error) {
	return s.linkBandwidth(s.Link, baseDir, pkt)
}

// linkBandwidth materializes one link's capacity source — the single
// bottleneck or any entry of a topology's links section.
func (s *Spec) linkBandwidth(l Link, baseDir string, pkt int) (trace.Bandwidth, error) {
	switch {
	case l.CapacityMbps > 0:
		return trace.Constant(trace.MbpsToPktsPerSec(l.CapacityMbps, pkt)), nil
	case len(l.Schedule) > 0:
		times := make([]float64, len(l.Schedule))
		rates := make([]float64, len(l.Schedule))
		for i, lv := range l.Schedule {
			times[i] = lv.AtSec
			rates[i] = trace.MbpsToPktsPerSec(lv.Mbps, pkt)
		}
		lv, err := trace.NewLevels(times, rates, l.ScheduleLoopSec)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		return lv, nil
	case l.TraceFile != "":
		path := l.TraceFile
		if !filepath.IsAbs(path) && baseDir != "" {
			path = filepath.Join(baseDir, path)
		}
		lv, err := trace.LoadMahimahi(path, trace.MahimahiOptions{BinMs: l.TraceBinMs})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		// Mahimahi opportunities are MTU-sized; rescale when the spec's
		// packet size differs so the byte rate is preserved.
		if pkt != DefaultPktBytes {
			times := make([]float64, lv.NumLevels())
			rates := make([]float64, lv.NumLevels())
			for i := range times {
				t, r := lv.Level(i)
				times[i] = t
				rates[i] = r * float64(DefaultPktBytes) / float64(pkt)
			}
			lv, err = trace.NewLevels(times, rates, lv.Period())
			if err != nil {
				return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
			}
		}
		return lv, nil
	}
	return nil, fmt.Errorf("scenario %q: link has no capacity source", s.Name)
}

// flowSeed derives a deterministic per-flow seed when the flow doesn't pin
// one. The constant is an arbitrary odd mixer so neighbouring flows get
// well-separated streams.
func flowSeed(specSeed int64, idx int, flowSeed int64) int64 {
	if flowSeed != 0 {
		return flowSeed
	}
	return specSeed + int64(idx+1)*1_000_003
}

// builtinAlgorithm constructs one of the package's scheme built-ins.
func builtinAlgorithm(f Flow, pkt int) (cc.Algorithm, error) {
	switch f.Scheme {
	case "cubic":
		return cc.NewCubic(), nil
	case "vegas":
		return cc.NewVegas(), nil
	case "bbr":
		return cc.NewBBR(), nil
	case "copa":
		return cc.NewCopa(), nil
	case "pcc-allegro":
		return cc.NewAllegro(), nil
	case "pcc-vivace":
		return cc.NewVivace(), nil
	case "fixed":
		return &fixedRate{rate: trace.MbpsToPktsPerSec(f.RateMbps, pkt)}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q (built-ins: cubic, vegas, bbr, copa, pcc-allegro, pcc-vivace, fixed; learned schemes need a resolver backed by the model zoo)", f.Scheme)
	}
}

// algorithm resolves a flow's controller: resolver first, then built-ins,
// then the app-limiting wrapper for rtc workloads.
func (s *Spec) algorithm(f Flow, opt CompileOptions, pkt int) (cc.Algorithm, error) {
	var alg cc.Algorithm
	var err error
	if opt.Resolver != nil {
		alg, err = opt.Resolver(f)
		if err != nil {
			return nil, err
		}
	}
	if alg == nil {
		alg, err = builtinAlgorithm(f, pkt)
		if err != nil {
			return nil, err
		}
	}
	if f.App != nil && f.App.Kind == "rtc" {
		alg = apps.AppLimited(alg, trace.MbpsToPktsPerSec(f.App.SourceMbps, pkt))
	}
	return alg, nil
}

// Compile lowers the spec onto netsim configurations. Each call constructs
// fresh controller instances, so a spec can be compiled once per engine in
// a differential run.
func (s *Spec) Compile(opt CompileOptions) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pkt := pktBytes(s, opt)
	bw, err := s.Bandwidth(opt.BaseDir, pkt)
	if err != nil {
		return nil, err
	}
	bw, err = netsimBandwidth(bw)
	if err != nil {
		return nil, err
	}
	// Cap flow rates against the schedule's PEAK, not its t=0 value:
	// netsim's MaxRate default samples At(0), and a schedule or replayed
	// trace that opens inside an outage would otherwise pin every flow's
	// rate to zero for the whole run.
	maxRate := 4 * peakCapacity(bw)
	c := &Compiled{
		Spec: s,
		Link: netsim.LinkConfig{
			Capacity:  bw,
			OWD:       s.Link.RTTms / 2 / 1000,
			QueuePkts: s.Link.QueuePkts,
			LossRate:  s.Link.LossRate,
		},
		NumFlows: len(s.Flows),
		Duration: s.DurationSec,
		PktBytes: pkt,
	}
	for i, f := range s.Flows {
		alg, err := s.algorithm(f, opt, pkt)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: flow %d: %w", s.Name, i, err)
		}
		label := f.Label
		if label == "" {
			label = fmt.Sprintf("%s-%d", f.Scheme, i)
		}
		cfg := netsim.FlowConfig{
			Label:   label,
			Alg:     alg,
			Start:   f.StartSec,
			Stop:    f.StopSec,
			MIms:    f.MIms,
			MaxRate: maxRate,
			Seed:    flowSeed(s.Seed, i, f.Seed),
		}
		// A declared flow rate (fixed scheme) or rtc media rate must be
		// honoured even above the link-derived cap: overload studies
		// deliberately offer more than the link can carry.
		if f.Scheme == "fixed" && f.RateMbps > 0 {
			cfg.MaxRate = math.Max(cfg.MaxRate, 2*trace.MbpsToPktsPerSec(f.RateMbps, pkt))
		}
		if f.App != nil && f.App.Kind == "rtc" {
			cfg.MaxRate = math.Max(cfg.MaxRate, 2*trace.MbpsToPktsPerSec(f.App.SourceMbps, pkt))
		}
		if f.App != nil && f.App.Kind == "bulk" {
			cfg.PacketBudget = int(f.App.FileMBytes * 1e6 / float64(pkt))
			if cfg.PacketBudget < 1 {
				cfg.PacketBudget = 1
			}
		}
		c.Flows = append(c.Flows, cfg)
	}
	for i, x := range s.Cross {
		rate := trace.MbpsToPktsPerSec(x.RateMbps, pkt)
		var alg cc.Algorithm
		if x.OnOffSec > 0 {
			alg = &onOffRate{rate: rate, halfPeriod: x.OnOffSec}
		} else {
			alg = &fixedRate{rate: rate}
		}
		c.Flows = append(c.Flows, netsim.FlowConfig{
			Label:   fmt.Sprintf("cross-%d", i),
			Alg:     alg,
			Start:   x.StartSec,
			Stop:    x.StopSec,
			MaxRate: 2 * rate,
			Seed:    flowSeed(s.Seed, len(s.Flows)+i, 0),
		})
	}
	return c, nil
}

// Gym lowers the spec to the single-flow MI environment used for training
// and the pantheon sweep harness: the link drives the primary (first) flow;
// declared cross traffic — plus any additional fixed-rate flows — becomes
// the environment's CrossTraffic schedule. Reactive secondary flows have no
// gym equivalent and are ignored here (the netsim path models them fully).
//
// A topology spec keeps the gym's single-flow view by lowering the primary
// flow's path to its minimum-peak-capacity bottleneck: that link's schedule
// and queue drive the environment, the path's summed one-way delays become
// the latency, link loss processes combine, and only cross traffic whose
// path shares the bottleneck link is folded in.
func (s *Spec) Gym(opt CompileOptions) (gym.Config, error) {
	if err := s.Validate(); err != nil {
		return gym.Config{}, err
	}
	pkt := pktBytes(s, opt)
	primary := s.Flows[0]

	// Single-bottleneck view of the spec: the sole link, or the primary
	// path's narrowest one.
	link := s.Link
	latencyMs := s.Link.RTTms / 2
	var bw trace.Bandwidth
	var pathPeak float64
	sharesBottleneck := func(path []string) bool { return true }
	if s.Topology() {
		bws := make([]trace.Bandwidth, len(s.Links))
		for i, l := range s.Links {
			b, err := s.linkBandwidth(l, opt.BaseDir, pkt)
			if err != nil {
				return gym.Config{}, err
			}
			bws[i] = b
		}
		bottleneck := -1
		latencyMs = 0
		lossPass := 1.0
		for _, name := range primary.Path {
			i := s.linkIndex(name)
			latencyMs += s.Links[i].DelayMs
			lossPass *= 1 - s.Links[i].LossRate
			peak := peakCapacity(bws[i])
			// MaxRate must cap against the PATH's minimum peak, not any
			// single link's: the narrowest bottleneck binds the flow.
			if bottleneck < 0 || peak < pathPeak {
				bottleneck, pathPeak = i, peak
			}
		}
		link = s.Links[bottleneck]
		link.LossRate = 1 - lossPass
		bw = bws[bottleneck]
		sharesBottleneck = func(path []string) bool {
			for _, name := range path {
				if s.linkIndex(name) == bottleneck {
					return true
				}
			}
			return false
		}
	} else {
		var err error
		bw, err = s.Bandwidth(opt.BaseDir, pkt)
		if err != nil {
			return gym.Config{}, err
		}
		pathPeak = peakCapacity(bw)
	}

	cfg := gym.Config{
		Bandwidth: bw,
		LatencyMs: latencyMs,
		QueuePkts: link.QueuePkts,
		LossRate:  link.LossRate,
		MIms:      primary.MIms,
		// Cap the rate against the schedule's PEAK (gym's own default
		// samples At(0), which under-caps schedules that open inside an
		// outage — the same hazard Compile guards on the netsim path).
		MaxRate: 8 * pathPeak,
		Seed:    flowSeed(s.Seed, 0, primary.Seed),
	}
	cross := crossSchedule{}
	for _, x := range s.Cross {
		if sharesBottleneck(x.Path) {
			cross.add(x, trace.MbpsToPktsPerSec(x.RateMbps, pkt))
		}
	}
	for _, f := range s.Flows[1:] {
		if f.Scheme == "fixed" && sharesBottleneck(f.Path) {
			cross.add(Cross{StartSec: f.StartSec, StopSec: f.StopSec}, trace.MbpsToPktsPerSec(f.RateMbps, pkt))
		}
	}
	if len(cross.items) > 0 {
		cfg.CrossTraffic = &cross
	}
	return cfg, nil
}

// peakCapacity returns the schedule's maximum rate in pkts/s (floored at
// 1 so a degenerate all-zero source still yields a usable cap).
func peakCapacity(bw trace.Bandwidth) float64 {
	peak := bw.At(0)
	if lv, ok := bw.(*trace.Levels); ok {
		peak = lv.PeakRate()
	}
	if peak < 1 {
		peak = 1
	}
	return peak
}

// outageFloorFrac is the residual service rate (as a fraction of the
// schedule's peak) that zero-capacity segments are replayed at on the
// packet-level simulator. netsim's O(1) virtual-queue bottleneck prices a
// packet's service at admission time, so a true zero-rate segment would
// accumulate unbounded service debt (one packet admitted during an outage
// costs 1/rate seconds of link time) and black out the link far beyond the
// outage itself. A small positive floor keeps outages deep fades instead.
// The gym lowering keeps true zeros: its fluid model carries an explicit
// queue and handles them exactly.
const outageFloorFrac = 0.02

// netsimBandwidth lowers a capacity schedule for the packet-level
// simulator, applying the outage floor to piecewise schedules.
func netsimBandwidth(bw trace.Bandwidth) (trace.Bandwidth, error) {
	lv, ok := bw.(*trace.Levels)
	if !ok {
		return bw, nil
	}
	floor := outageFloorFrac * lv.PeakRate()
	needed := false
	for i := 0; i < lv.NumLevels(); i++ {
		if _, r := lv.Level(i); r == 0 {
			needed = true
			break
		}
	}
	if !needed {
		return bw, nil
	}
	times := make([]float64, lv.NumLevels())
	rates := make([]float64, lv.NumLevels())
	for i := range times {
		t, r := lv.Level(i)
		times[i] = t
		// Only true zeros are floored: a declared low-but-positive rate is
		// the user's call and passes through untouched.
		if r == 0 {
			r = floor
		}
		rates[i] = r
	}
	return trace.NewLevels(times, rates, lv.Period())
}

// crossSchedule sums every cross-traffic entry's square wave into one
// trace.Bandwidth for the gym's fluid model.
type crossSchedule struct {
	items []Cross
	pps   []float64
}

func (c *crossSchedule) add(x Cross, pps float64) {
	c.items = append(c.items, x)
	c.pps = append(c.pps, pps)
}

// At implements trace.Bandwidth.
func (c *crossSchedule) At(t float64) float64 {
	var sum float64
	for i, it := range c.items {
		if t < it.StartSec || (it.StopSec > 0 && t >= it.StopSec) {
			continue
		}
		if it.OnOffSec > 0 && int((t-it.StartSec)/it.OnOffSec)%2 == 1 {
			continue // off half-period
		}
		sum += c.pps[i]
	}
	return sum
}

// fixedRate is a non-reactive constant-rate controller (cross traffic, and
// the "fixed" scheme).
type fixedRate struct {
	rate float64
}

func (f *fixedRate) Name() string                { return "fixed" }
func (f *fixedRate) Reset(int64)                 {}
func (f *fixedRate) InitialRate(float64) float64 { return f.rate }
func (f *fixedRate) Update(cc.Report) float64    { return f.rate }

// onOffRate alternates between its rate and (effectively) silence every
// halfPeriod seconds of monitor-interval time — a square-wave workload
// generator for bursty cross traffic.
type onOffRate struct {
	rate       float64
	halfPeriod float64
	elapsed    float64
}

func (o *onOffRate) Name() string { return "on-off" }

func (o *onOffRate) Reset(int64) { o.elapsed = 0 }

func (o *onOffRate) InitialRate(float64) float64 { return o.rate }

func (o *onOffRate) Update(r cc.Report) float64 {
	o.elapsed += r.Duration
	if int(o.elapsed/o.halfPeriod)%2 == 1 {
		// 0.5 pkts/s is the quietest an MI-driven flow can get: netsim's
		// Flow.closeMI clamps any requested rate <= 0 up to exactly this.
		return 0.5
	}
	return o.rate
}
