GO ?= go

.PHONY: all build vet test test-race chaos chaos-serve obs bench bench-sim bench-train bench-json bench-serve bench-topo fuzz-scen ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race detector over the concurrency-bearing packages: the shard-parallel
# public API (root + transport), the serving engine's coalescing shards,
# the parallel collectors/schedulers, the data-parallel PPO update +
# pipelined trainer, and the sharded topology simulator's round barrier.
test-race:
	$(GO) test -race . ./transport ./internal/faults ./internal/rl ./internal/core ./internal/pantheon ./internal/serve ./internal/topo ./internal/obs

# Seeded chaos suite: the fault-injection package (bit-reproducible
# same-seed plans, every wire/report/inference injector), safe-mode
# trip/fallback/recovery on the handle hot path, and the hardened
# transport's blackout + write-failure behaviour over real loopback
# sockets (receiver killed mid-send, sequence-window blackouts, corrupted
# acks, NaN-poisoned inference).
chaos:
	$(GO) test -short -count=1 ./internal/faults
	$(GO) test -short -count=1 -run 'SafeMode|OnlineAdapt|LoadModelFile|SaveLoad' .
	$(GO) test -short -count=1 -run 'Chaos|Blackout' ./transport

# Serving-resilience chaos suite: engine overload shedding (queue bound +
# decision deadline), shard panic watchdog, epoch canary auto-rollback on a
# finite-but-poisoned publish, crash-safe state snapshots, daemon demux
# hardening against malformed datagrams, and client failover across a
# daemon killed and restarted mid-load (seeded fault plans, zero Report
# errors end to end).
chaos-serve:
	$(GO) test -short -count=1 -run 'Overload|Shed|QueueBound|Panic|Watchdog|Rollback|Canary|BaseEpoch' ./internal/serve
	$(GO) test -short -count=1 -run 'Rollback|Canary|ServingState|EvictionChurn' .
	$(GO) test -short -count=1 -run 'RateServer|ServeFlow|ServeConn|Failover|Restart|Malformed' ./transport

# Observability smoke: boot the complete daemon in-process (UDP rate server
# + -metrics-addr HTTP exposition + stats ticker + canary), drive real flows
# through it, scrape /metrics and /healthz asserting the key series, and
# tear down in strict dependency order; then the internal/obs unit suite
# (zero-alloc pins, exposition formats) and the root-level chaos/scrape
# pins (flight recorder across a canary rollback, concurrent scrape churn).
obs:
	$(GO) test -count=1 -run 'TestDaemon' ./cmd/mocc-serve
	$(GO) test -count=1 ./internal/obs
	$(GO) test -count=1 -run 'TestObs|TestLibraryHealthz|TestHandler' .

# Micro-benchmarks for the NN/PPO hot path (run with -count for stability).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/nn ./internal/rl

# Simulator benchmarks: netsim packet-train engine vs the per-packet
# reference (pkts/s + allocs), and the pantheon scenario scheduler's
# serial-vs-parallel sweep wall-clock.
bench-sim:
	$(GO) test -run '^$$' -bench 'Engine' -benchmem ./internal/netsim
	$(GO) test -run '^$$' -bench 'RunSweep' -benchmem ./internal/pantheon

# Training-loop benchmarks: serial vs data-parallel vs pipelined wall-clock
# (core) and the PPO update engine at several worker counts (rl).
bench-train:
	$(GO) test -run '^$$' -bench 'PPOUpdate|OfflineTrain' -benchmem ./internal/rl ./internal/core

# Perf trajectory snapshot: run the training/nn/netsim benchmarks and record
# every metric (ns/op, allocs/op, steps/s, pkts/s, ...) in BENCH_train.json
# so speedups and regressions are tracked in-repo PR over PR. The raw output
# goes through a temp file (not a pipe) so a failing benchmark run aborts
# before BENCH_train.json is overwritten with partial data.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/nn ./internal/rl ./internal/core ./internal/netsim > bench.out.tmp
	$(GO) run ./cmd/benchjson -out BENCH_train.json < bench.out.tmp
	rm -f bench.out.tmp

# Serving-engine snapshot: the coalesced batched-inference path vs the
# per-call single-sample baseline at 64 and 10000 concurrent apps, plus the
# overload-shedding path (2x in-flight demand against a bounded queue:
# shed fraction and p99 decision latency) and the observability tax
# (ObsOverhead enabled-vs-disabled, pinned at 0 allocs and <5% ns/report),
# recorded to BENCH_serve.json
# (ns/report + reports/s + shed/report + p99-ns in the same snapshot). Fixed
# iteration count for run-to-run comparability; five repeats folded to
# per-metric medians so one hypervisor steal spike cannot skew a committed
# number; same temp-file guard as bench-json so a failing run never
# truncates the committed snapshot.
bench-serve:
	$(GO) test -run '^$$' -bench 'ServeReport|ObsOverhead' -benchmem -benchtime 150x -count 5 . > bench-serve.out.tmp
	$(GO) run ./cmd/benchjson -agg median -out BENCH_serve.json < bench-serve.out.tmp
	rm -f bench-serve.out.tmp

# Topology-engine snapshot: the 10k-flow two-tier incast (serial vs sharded
# workers) and steady-state multi-hop forwarding on the parking-lot chain
# (engine vs per-packet reference), recorded to BENCH_topo.json. Five
# repeats folded to per-metric medians and the same temp-file guard as
# bench-json so a failing run never truncates the committed snapshot.
bench-topo:
	$(GO) test -run '^$$' -bench 'Topo' -benchmem -count 5 ./internal/topo > bench-topo.out.tmp
	$(GO) run ./cmd/benchjson -agg median -out BENCH_topo.json < bench-topo.out.tmp
	rm -f bench-topo.out.tmp

# Differential fuzz smoke: 25 generator-seeded scenarios replayed through
# both netsim engines (packet-train vs per-packet reference), then 25 more
# topology scenarios through both topo engines (sharded vs per-packet
# reference) — every pair must agree bit-for-bit AND satisfy the
# engine-independent physical invariants (packet conservation, RTT ≥ path
# propagation, per-link throughput ≤ capacity). Runs in a few seconds
# including the build.
fuzz-scen:
	$(GO) run ./cmd/mocc-scen fuzz -n 25 -seed 1
	$(GO) run ./cmd/mocc-scen fuzz -topo -n 25 -seed 1

ci: all
