GO ?= go

.PHONY: all build vet test test-race bench bench-sim ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race detector over the concurrency-bearing packages: the shard-parallel
# public API (root + transport) and the parallel collectors/schedulers.
test-race:
	$(GO) test -race . ./transport ./internal/rl ./internal/pantheon

# Micro-benchmarks for the NN/PPO hot path (run with -count for stability).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/nn ./internal/rl

# Simulator benchmarks: netsim packet-train engine vs the per-packet
# reference (pkts/s + allocs), and the pantheon scenario scheduler's
# serial-vs-parallel sweep wall-clock.
bench-sim:
	$(GO) test -run '^$$' -bench 'Engine' -benchmem ./internal/netsim
	$(GO) test -run '^$$' -bench 'RunSweep' -benchmem ./internal/pantheon

ci: all
