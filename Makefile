GO ?= go

.PHONY: all build vet test bench ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Micro-benchmarks for the NN/PPO hot path (run with -count for stability).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/nn ./internal/rl

ci: all
