// Command benchjson converts `go test -bench` output on stdin into a JSON
// document so the repo can track its performance trajectory in-version-control
// (make bench-json writes BENCH_train.json). Every `<value> <unit>` metric
// pair is captured generically, so custom b.ReportMetric units (steps/s,
// iters/s, pkts/s) land next to ns/op and allocs/op without parser changes.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/... | benchjson -out BENCH_train.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the `pkg:` line).
	Package string `json:"package,omitempty"`
	// Iterations is the b.N the reported averages were measured over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported metric (ns/op,
	// B/op, allocs/op, and any custom units such as steps/s).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	// Context lines from the benchmark header (goos, goarch, cpu, ...).
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	report := Report{Context: map[string]string{}}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			report.Context[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   120   9371940 ns/op   27458 steps/s   769 allocs/op
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
