// Command benchjson converts `go test -bench` output on stdin into a JSON
// document so the repo can track its performance trajectory in-version-control
// (make bench-json writes BENCH_train.json). Every `<value> <unit>` metric
// pair is captured generically, so custom b.ReportMetric units (steps/s,
// iters/s, pkts/s) land next to ns/op and allocs/op without parser changes.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/... | benchjson -out BENCH_train.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the `pkg:` line).
	Package string `json:"package,omitempty"`
	// Iterations is the b.N the reported averages were measured over.
	Iterations int64 `json:"iterations"`
	// Runs is how many result lines were aggregated into this entry
	// (>1 only under -agg median with -count repeats).
	Runs int `json:"runs,omitempty"`
	// Metrics maps unit -> value for every reported metric (ns/op,
	// B/op, allocs/op, and any custom units such as steps/s).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	// Context lines from the benchmark header (goos, goarch, cpu, ...).
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output path (default stdout)")
	agg := flag.String("agg", "", "aggregate repeated benchmark names: 'median' folds -count repeats into one per-metric median entry (robust to scheduling-noise spikes on shared hosts)")
	flag.Parse()
	if *agg != "" && *agg != "median" {
		log.Fatalf("unknown -agg mode %q (want 'median')", *agg)
	}

	// The parallelism of the recording machine frames every throughput
	// number in the snapshot, so pin it in the context even though the
	// bench header doesn't print it.
	report := Report{Context: map[string]string{
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"cpus":       strconv.Itoa(runtime.NumCPU()),
	}}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			report.Context[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	if *agg == "median" {
		report.Benchmarks = aggregateMedian(report.Benchmarks)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// aggregateMedian folds repeated benchmark names (from -count runs) into
// one entry each, keeping first-seen order: every metric becomes the median
// of the values reported across that name's runs, and Runs records how many
// were folded. Medians rather than means because the failure mode being
// defended against — a hypervisor steal spike inflating one run — is an
// outlier, not a shift.
func aggregateMedian(in []Benchmark) []Benchmark {
	groups := map[string][]Benchmark{}
	var order []string
	for _, b := range in {
		if _, seen := groups[b.Name]; !seen {
			order = append(order, b.Name)
		}
		groups[b.Name] = append(groups[b.Name], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		g := groups[name]
		agg := Benchmark{Name: name, Package: g[0].Package, Runs: len(g), Metrics: map[string]float64{}}
		var iters []float64
		units := map[string][]float64{}
		for _, b := range g {
			iters = append(iters, float64(b.Iterations))
			for u, v := range b.Metrics {
				units[u] = append(units[u], v)
			}
		}
		agg.Iterations = int64(median(iters))
		for u, vs := range units {
			agg.Metrics[u] = median(vs)
		}
		out = append(out, agg)
	}
	return out
}

// median returns the middle value of vs (mean of the middle two for even
// counts). vs is sorted in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   120   9371940 ns/op   27458 steps/s   769 allocs/op
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
