package main

// Load-generator mode against a mocc-serve daemon (-serve-addr): drive N
// simulated apps over one shared UDP socket, each sending report datagrams
// as fast as the daemon answers, and print the sustained reports/sec plus
// per-report decision-latency percentiles. One socket carries all flows
// (10k apps would exhaust file descriptors otherwise); transport.ServeConn
// demuxes rate replies to the per-app flows, and each flow's
// transport.ServeFlow rides out daemon overload (shed answers keep the
// previous rate) and daemon death (local AIMD fallback with backoff-probed
// resync), so a daemon restart mid-run shows up in the fallback/resync
// counters instead of as client errors.

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"mocc"
	"mocc/internal/obs"
	"mocc/transport"
)

// serveGenConfig parameterises one load-generation run.
type serveGenConfig struct {
	Addr     string
	Apps     int
	Duration time.Duration
	Seed     int64
}

// runServeGen executes the load generation and prints the summary table.
func runServeGen(cfg serveGenConfig, out io.Writer) error {
	if cfg.Apps <= 0 {
		return fmt.Errorf("serve-gen: need -apps >= 1, got %d", cfg.Apps)
	}
	conn, err := transport.DialServe(cfg.Addr, transport.ServeConnConfig{})
	if err != nil {
		return fmt.Errorf("serve-gen: %w", err)
	}
	defer conn.Close()

	// One lock-free shared histogram replaces per-flow sample slices: all
	// flows observe concurrently, and the percentiles come from the exact
	// bucketing the daemon's mocc_serve_decision_latency_seconds series
	// uses, so client- and server-side latency tables line up.
	hist := obs.NewRegistry().Histogram("mocc_client_report_latency_seconds",
		"Daemon-served decision latency.", 1e-9)
	stats := make([]transport.ServeFlowStats, cfg.Apps)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for a := 0; a < cfg.Apps; a++ {
		wg.Add(1)
		go func(flow int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(flow)))
			w := randomPref(rng)
			sf := conn.Flow(uint64(flow), w, transport.FailoverConfig{
				Timeout:     500 * time.Millisecond,
				Retries:     0,
				BackoffBase: 100 * time.Millisecond,
				BackoffMax:  time.Second,
				Seed:        cfg.Seed,
			})
			for time.Now().Before(deadline) {
				st := syntheticStatus(rng)
				served := sf.Stats().Served
				start := time.Now()
				if _, err := sf.Report(st); err != nil {
					break // ServeConn closed underneath us
				}
				if sf.Stats().Served > served {
					// Answered by the daemon with a usable rate: that
					// round trip is a decision latency sample.
					hist.Observe(uint64(time.Since(start)))
				} else if sf.Stats().FallbackActive {
					// Local fallback decisions return instantly; pace them
					// like a monitor interval instead of busy-spinning the
					// load generator while the daemon is unreachable.
					time.Sleep(time.Millisecond)
				}
			}
			stats[flow] = sf.Stats()
		}(a)
	}
	wg.Wait()
	return writeServeGenTable(out, cfg, hist.Snapshot(), stats)
}

// randomPref draws a normalized preference vector.
func randomPref(rng *rand.Rand) mocc.Weights {
	a, b, c := rng.Float64()+0.05, rng.Float64()+0.05, rng.Float64()+0.05
	s := a + b + c
	return mocc.Weights{Thr: a / s, Lat: b / s, Loss: c / s}
}

// syntheticStatus fabricates one plausible monitor interval: a 40ms window
// with mild jitter in delivery and loss, enough to exercise the history and
// keep decisions flowing.
func syntheticStatus(rng *rand.Rand) mocc.Status {
	sent := 40 + rng.Float64()*20
	lost := sent * 0.01 * rng.Float64()
	return mocc.Status{
		Duration:     40 * time.Millisecond,
		PacketsSent:  sent,
		PacketsAcked: sent - lost,
		PacketsLost:  lost,
		AvgRTT:       time.Duration(40+rng.Float64()*15) * time.Millisecond,
		MinRTT:       40 * time.Millisecond,
	}
}

// writeServeGenTable prints the run summary from the shared latency
// histogram snapshot and the per-flow client counters.
func writeServeGenTable(out io.Writer, cfg serveGenConfig, lat obs.HistSnapshot, stats []transport.ServeFlowStats) error {
	pct := func(p float64) time.Duration { return time.Duration(lat.Quantile(p)) }
	var agg transport.ServeFlowStats
	for _, st := range stats {
		agg.Served += st.Served
		agg.Shed += st.Shed
		agg.Timeouts += st.Timeouts
		agg.Retries += st.Retries
		agg.Fallbacks += st.Fallbacks
		agg.FallbackReports += st.FallbackReports
		agg.Resyncs += st.Resyncs
		if st.Epoch > agg.Epoch {
			agg.Epoch = st.Epoch
		}
	}
	rps := float64(agg.Served) / cfg.Duration.Seconds()
	_, err := fmt.Fprintf(out,
		"== mocc-serve load generation ==\n"+
			"target          %s\n"+
			"apps            %d\n"+
			"duration        %s\n"+
			"reports served  %d\n"+
			"shed            %d\n"+
			"timeouts        %d (retries %d)\n"+
			"fallbacks       %d (local reports %d, resyncs %d)\n"+
			"reports/sec     %.0f\n"+
			"latency p50     %s\n"+
			"latency p90     %s\n"+
			"latency p99     %s\n"+
			"latency max     %s\n"+
			"model epoch     %d\n",
		cfg.Addr, cfg.Apps, cfg.Duration, agg.Served, agg.Shed,
		agg.Timeouts, agg.Retries,
		agg.Fallbacks, agg.FallbackReports, agg.Resyncs,
		rps, pct(0.50), pct(0.90), pct(0.99), pct(1.0), agg.Epoch)
	return err
}
