package main

// Load-generator mode against a mocc-serve daemon (-serve-addr): drive N
// simulated apps over one shared UDP socket, each sending report datagrams
// as fast as the daemon answers, and print the sustained reports/sec plus
// per-report decision-latency percentiles. One socket carries all flows
// (10k apps would exhaust file descriptors otherwise); a central reader
// demuxes rate replies to the per-app goroutines by flow id.

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mocc/internal/datapath"
)

// serveGenConfig parameterises one load-generation run.
type serveGenConfig struct {
	Addr     string
	Apps     int
	Duration time.Duration
	Seed     int64
}

// runServeGen executes the load generation and prints the summary table.
func runServeGen(cfg serveGenConfig, out io.Writer) error {
	if cfg.Apps <= 0 {
		return fmt.Errorf("serve-gen: need -apps >= 1, got %d", cfg.Apps)
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve-gen: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return fmt.Errorf("serve-gen: %w", err)
	}
	defer conn.Close()

	// Per-flow reply channels, indexed by flow id. Buffered so a late or
	// duplicated reply never blocks the reader.
	replies := make([]chan rateReply, cfg.Apps)
	for i := range replies {
		replies[i] = make(chan rateReply, 4)
	}

	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		buf := make([]byte, 64*1024)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				select {
				case <-stop:
					return // socket closed at shutdown
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue // transient (e.g. ICMP refused while the daemon restarts)
			}
			seq, nanos, flow, rate, epoch, ok := datapath.DecodeRate(buf[:n])
			if !ok || flow >= uint64(cfg.Apps) {
				continue
			}
			select {
			case replies[flow] <- rateReply{seq: seq, nanos: nanos, rate: rate, epoch: epoch}:
			case <-stop:
				return
			default: // flow already gave up on this seq
			}
		}
	}()

	var (
		total    atomic.Int64 // completed report->rate round trips
		timeouts atomic.Int64
		writeMu  sync.Mutex // serialize writes on the shared socket
	)
	results := make([][]time.Duration, cfg.Apps)
	epochs := make([]uint64, cfg.Apps)

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for a := 0; a < cfg.Apps; a++ {
		wg.Add(1)
		go func(flow int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(flow)))
			w := randomPref(rng)
			pkt := make([]byte, datapath.WireReportBytes)
			var seq uint64
			lat := make([]time.Duration, 0, 256)
			for time.Now().Before(deadline) {
				seq++
				rep := syntheticReport(uint64(flow), w, rng)
				start := time.Now()
				datapath.EncodeReport(pkt, seq, start.UnixNano(), rep)
				writeMu.Lock()
				_, werr := conn.Write(pkt)
				writeMu.Unlock()
				if werr != nil {
					if errors.Is(werr, net.ErrClosed) {
						return
					}
					// Transient (e.g. ICMP refused while the daemon
					// restarts): back off briefly and try the next report.
					timeouts.Add(1)
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if r, ok := awaitReply(replies[flow], seq, stop); ok {
					if !math.IsNaN(r.rate) {
						lat = append(lat, time.Since(start))
						total.Add(1)
						epochs[flow] = r.epoch
					}
				} else {
					timeouts.Add(1)
				}
			}
			results[flow] = lat
		}(a)
	}
	wg.Wait()
	close(stop)
	conn.Close()
	readerDone.Wait()

	return writeServeGenTable(out, cfg, results, epochs, total.Load(), timeouts.Load())
}

type rateReply struct {
	seq   uint64
	nanos int64
	rate  float64
	epoch uint64
}

// awaitReply waits for the rate decision answering seq, discarding stale
// replies from earlier timed-out reports. The timeout is short so one lost
// datagram costs the flow half a second, not the rest of the run.
func awaitReply(ch chan rateReply, seq uint64, stop chan struct{}) (rateReply, bool) {
	timer := time.NewTimer(500 * time.Millisecond)
	defer timer.Stop()
	for {
		select {
		case r := <-ch:
			if r.seq == seq {
				return r, true
			}
		case <-timer.C:
			return rateReply{}, false
		case <-stop:
			return rateReply{}, false
		}
	}
}

// pref is a flow's objective preference vector.
type pref struct{ Thr, Lat, Loss float64 }

// randomPref draws a normalized preference vector.
func randomPref(rng *rand.Rand) pref {
	a, b, c := rng.Float64()+0.05, rng.Float64()+0.05, rng.Float64()+0.05
	s := a + b + c
	return pref{Thr: a / s, Lat: b / s, Loss: c / s}
}

// syntheticReport fabricates one plausible monitor interval: a 40ms window
// with mild jitter in delivery and loss, enough to exercise the history and
// keep decisions flowing.
func syntheticReport(flow uint64, w pref, rng *rand.Rand) datapath.WireReport {
	sent := 40 + rng.Float64()*20
	lost := sent * 0.01 * rng.Float64()
	return datapath.WireReport{
		Flow: flow,
		Thr:  w.Thr, Lat: w.Lat, Loss: w.Loss,
		DurationNs: (40 * time.Millisecond).Nanoseconds(),
		Sent:       sent,
		Acked:      sent - lost,
		Lost:       lost,
		AvgRTTNs:   (time.Duration(40+rng.Float64()*15) * time.Millisecond).Nanoseconds(),
		MinRTTNs:   (40 * time.Millisecond).Nanoseconds(),
	}
}

// writeServeGenTable merges per-app latencies and prints the run summary.
func writeServeGenTable(out io.Writer, cfg serveGenConfig, results [][]time.Duration, epochs []uint64, total, timeouts int64) error {
	var all []time.Duration
	for _, lat := range results {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	maxEpoch := uint64(0)
	for _, e := range epochs {
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	rps := float64(total) / cfg.Duration.Seconds()
	_, err := fmt.Fprintf(out,
		"== mocc-serve load generation ==\n"+
			"target        %s\n"+
			"apps          %d\n"+
			"duration      %s\n"+
			"reports ok    %d\n"+
			"timeouts      %d\n"+
			"reports/sec   %.0f\n"+
			"latency p50   %s\n"+
			"latency p90   %s\n"+
			"latency p99   %s\n"+
			"latency max   %s\n"+
			"model epoch   %d\n",
		cfg.Addr, cfg.Apps, cfg.Duration, total, timeouts, rps,
		pct(0.50), pct(0.90), pct(0.99), pct(1.0), maxEpoch)
	return err
}
