package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mocc"
	"mocc/internal/faults"
	"mocc/transport"
)

// parseFaultPlan builds a faults.Plan from the -faults spec: comma-separated
// injectors, e.g.
//
//	ackloss=0.2x3,dup=0.1,reorder=0.1x2,corrupt=0.2:both,blackout=100-300,nan=5-10,stall=5-8:300ms
//
// Report-path injectors (status delay, clock skew) are exercised by the
// chaos suite; the bench transfer drives the wire and inference injectors
// against a live loopback socket.
func parseFaultPlan(spec string, seed int64) (*faults.Plan, error) {
	plan := &faults.Plan{Seed: seed}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault %q: want key=value", part)
		}
		switch key {
		case "ackloss":
			prob, n, err := probTimes(val)
			if err != nil {
				return nil, fmt.Errorf("ackloss: %w", err)
			}
			plan.AckLoss = &faults.AckLoss{Prob: prob, Burst: n}
		case "dup":
			prob, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("dup: %w", err)
			}
			plan.Duplicate = &faults.Duplicate{Prob: prob}
		case "reorder":
			prob, n, err := probTimes(val)
			if err != nil {
				return nil, fmt.Errorf("reorder: %w", err)
			}
			plan.Reorder = &faults.Reorder{Prob: prob, Delay: n}
		case "corrupt":
			probStr, side, _ := strings.Cut(val, ":")
			prob, err := strconv.ParseFloat(probStr, 64)
			if err != nil {
				return nil, fmt.Errorf("corrupt: %w", err)
			}
			c := &faults.Corrupt{Prob: prob}
			switch side {
			case "", "both":
				c.Data, c.Acks = true, true
			case "data":
				c.Data = true
			case "acks":
				c.Acks = true
			default:
				return nil, fmt.Errorf("corrupt: unknown side %q (data|acks|both)", side)
			}
			plan.Corrupt = c
		case "blackout":
			var b faults.Blackout
			for _, w := range strings.Split(val, ";") {
				from, to, err := seqRange(w)
				if err != nil {
					return nil, fmt.Errorf("blackout: %w", err)
				}
				b.Windows = append(b.Windows, faults.Window{From: from, To: to})
			}
			plan.Blackout = &b
		case "nan":
			from, to, err := seqRange(val)
			if err != nil {
				return nil, fmt.Errorf("nan: %w", err)
			}
			inf := infFaults(plan)
			inf.NaNFrom, inf.NaNTo = int(from), int(to)
		case "stall":
			rng, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("stall %q: want FROM-TO:DURATION", val)
			}
			from, to, err := seqRange(rng)
			if err != nil {
				return nil, fmt.Errorf("stall: %w", err)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("stall: %w", err)
			}
			inf := infFaults(plan)
			inf.StallFrom, inf.StallTo, inf.StallFor = int(from), int(to), d
		default:
			return nil, fmt.Errorf("unknown fault %q", key)
		}
	}
	return plan, nil
}

func infFaults(plan *faults.Plan) *faults.InferenceFaults {
	if plan.Inference == nil {
		plan.Inference = &faults.InferenceFaults{}
	}
	return plan.Inference
}

// probTimes parses "PROB" or "PROBxN".
func probTimes(val string) (float64, int, error) {
	probStr, nStr, hasN := strings.Cut(val, "x")
	prob, err := strconv.ParseFloat(probStr, 64)
	if err != nil {
		return 0, 0, err
	}
	n := 0
	if hasN {
		if n, err = strconv.Atoi(nStr); err != nil {
			return 0, 0, err
		}
	}
	return prob, n, nil
}

// seqRange parses "FROM-TO".
func seqRange(val string) (uint64, uint64, error) {
	fromStr, toStr, ok := strings.Cut(val, "-")
	if !ok {
		return 0, 0, fmt.Errorf("range %q: want FROM-TO", val)
	}
	from, err := strconv.ParseUint(fromStr, 10, 64)
	if err != nil {
		return 0, 0, err
	}
	to, err := strconv.ParseUint(toStr, 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

// runFaults trains a quick model, hosts one app over a loopback socket
// transfer with the fault plan interposed on the wire and inference paths,
// and prints the hardened sender's stats next to the app's safe-mode
// telemetry — a one-command chaos run.
func runFaults(spec string, seed int64, dur time.Duration, out *os.File) error {
	plan, err := parseFaultPlan(spec, seed)
	if err != nil {
		return fmt.Errorf("parsing -faults: %w", err)
	}

	lib, err := mocc.Train(mocc.QuickTraining(),
		mocc.WithoutAdaptation(),
		mocc.WithInferenceFault(plan.InferenceHook()))
	if err != nil {
		return err
	}
	app, err := lib.Register(mocc.BalancedPreference)
	if err != nil {
		return err
	}
	defer app.Unregister()

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{})
	if err != nil {
		return err
	}
	defer recv.Close()

	var fc *faults.FaultConn
	stats, sendErr := transport.Send(recv.Addr(), app, dur, transport.Config{
		MI:          20 * time.Millisecond,
		MaxRatePps:  2000,
		LossTimeout: 60 * time.Millisecond,
		WrapConn: func(inner transport.PacketConn) transport.PacketConn {
			fc = plan.WrapConn(inner)
			return fc
		},
	})

	fmt.Fprintf(out, "== Chaos transfer (seed %d, %v) ==\n", seed, dur)
	fmt.Fprintf(out, "plan: %s\n\n", spec)
	fmt.Fprintf(out, "transport: sent %d acked %d lost %d (%.2f Mbps, avg RTT %v, %d intervals)\n",
		stats.Sent, stats.Acked, stats.Lost, stats.ThroughputMbps, stats.AvgRTT, stats.Intervals)
	fmt.Fprintf(out, "hardening: writeErrs %d blackouts %d (%d intervals, %v) evicted %d\n",
		stats.WriteErrors, stats.Blackouts, stats.BlackoutIntervals, stats.BlackoutTime, stats.Evicted)
	cs := fc.Stats()
	fmt.Fprintf(out, "injected:  dataSwallowed %d dataCorrupt %d dataDup %d ackDrop %d ackCorrupt %d ackReorder %d\n",
		cs.DataSwallowed, cs.DataCorrupted, cs.DataDuplicated, cs.AcksDropped, cs.AcksCorrupted, cs.AcksReordered)
	ast := app.Stats()
	fmt.Fprintf(out, "safe mode: fallbacks %d (%d intervals, active %v) faults %d",
		ast.Fallbacks, ast.FallbackIntervals, ast.FallbackActive, ast.Faults)
	if ast.LastFault != "" {
		fmt.Fprintf(out, " lastFault %q", ast.LastFault)
	}
	fmt.Fprintln(out)
	if sendErr != nil {
		fmt.Fprintf(out, "transfer ended with: %v\n", sendErr)
	}
	return nil
}
