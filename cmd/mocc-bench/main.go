// Command mocc-bench regenerates any table or figure from the paper's
// evaluation (§6) as text output. Learned models are trained in-process at
// the requested scale (deterministic per seed), then the experiment runs
// against the simulators.
//
// Usage:
//
//	mocc-bench -fig 5 -scale quick
//	mocc-bench -fig all -scale standard -seed 3
//	mocc-bench -scenario examples/scenarios/trace-replay.json
//	mocc-bench -faults 'blackout=100-300,corrupt=0.2:both,nan=5-10' -fault-seed 7
//	mocc-bench -serve-addr 127.0.0.1:9053 -apps 10000 -duration 30s
//
// Figure ids: 1a 1b 1c 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 all
//
// With -scenario, perf runs target a declarative scenario spec file (see
// the mocc/scenario package and `mocc-scen`) instead of a built-in grid.
//
// With -faults, a seeded fault plan (mocc/internal/faults) is interposed on
// a live loopback transfer hosting one app: wire injectors (ack loss
// bursts, duplication, reordering, header corruption, blackout windows)
// wrap the socket and inference injectors (NaN poisoning, stalls) wrap the
// learned decision, then the hardened sender's stats and the app's
// safe-mode telemetry are printed. Same seed + same plan = same injection
// decisions.
//
// With -serve-addr, mocc-bench becomes a load generator for a running
// mocc-serve daemon: -apps concurrent flows share one UDP socket, each
// sending report datagrams as fast as the daemon replies, and the run
// prints sustained reports/sec plus p50/p90/p99/max decision latency.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mocc/internal/apps"
	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/datapath"
	"mocc/internal/objective"
	"mocc/internal/pantheon"
	"mocc/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mocc-bench: ")

	var (
		fig       = flag.String("fig", "all", "figure to regenerate (1a..19 or all)")
		scale     = flag.String("scale", "quick", "model training scale: quick | standard")
		seed      = flag.Int64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS, 1 = serial); results are identical at any count")
		scenFile  = flag.String("scenario", "", "run a scenario spec file instead of a built-in figure (learned schemes resolve through the zoo)")
		engine    = flag.String("engine", "fast", "netsim engine for -scenario runs: fast | reference")
		faultSpec = flag.String("faults", "", "run a chaos transfer under this fault plan (e.g. 'blackout=100-300,ackloss=0.2x3,nan=5-10') instead of a figure")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the -faults plan (same seed = same injection decisions)")
		faultDur  = flag.Duration("fault-dur", 2*time.Second, "duration of the -faults transfer")
		serveAddr = flag.String("serve-addr", "", "load-generate against a mocc-serve daemon at this address instead of running a figure")
		serveApps = flag.Int("apps", 100, "concurrent apps for -serve-addr load generation")
		serveDur  = flag.Duration("duration", 10*time.Second, "length of the -serve-addr load generation")
	)
	flag.Parse()

	if *serveAddr != "" {
		if err := runServeGen(serveGenConfig{
			Addr: *serveAddr, Apps: *serveApps, Duration: *serveDur, Seed: *seed,
		}, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *faultSpec != "" {
		if err := runFaults(*faultSpec, *faultSeed, *faultDur, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	var zscale pantheon.Scale
	switch *scale {
	case "quick":
		zscale = pantheon.Quick
	case "standard":
		zscale = pantheon.Standard
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	zoo := pantheon.NewZoo(zscale, *seed)
	schemes := pantheon.NewSchemes(zoo)
	out := os.Stdout

	if *scenFile != "" {
		spec, err := scenario.Load(*scenFile)
		if err != nil {
			log.Fatal(err)
		}
		res, err := scenario.Run(spec, scenario.RunOptions{
			CompileOptions: scenario.CompileOptions{
				BaseDir:  filepath.Dir(*scenFile),
				Resolver: schemes.ScenarioResolver(),
			},
			Engine: scenario.Engine(*engine),
		})
		if err != nil {
			log.Fatal(err)
		}
		mustWrite(pantheon.ScenarioResultTable(res), out)
		return
	}

	runners := map[string]func(){
		"1a": func() {
			res := pantheon.RunFig1a(schemes, pantheon.Fig1aConfig{DurationSec: 50, Seed: *seed})
			t := pantheon.Table{Title: "Figure 1a throughput under varying bandwidth (Mbps, mean/min/max)",
				Header: []string{"scheme", "mean", "min", "max"}}
			for _, s := range res.Series {
				mean, lo, hi := seriesStats(s.ThrMbps)
				t.AddF(s.Scheme, mean, lo, hi)
			}
			mean, lo, hi := seriesStats(res.Capacity.ThrMbps)
			t.AddF(res.Capacity.Scheme, mean, lo, hi)
			mustWrite(t, out)
		},
		"1b": func() {
			mustWrite(pantheon.RunFig1b(schemes, 8, 250, *seed).Table(), out)
		},
		"1c": func() {
			res := pantheon.RunFig1c(zoo, 0)
			fmt.Fprintf(out, "== Figure 1c Aurora re-training ==\nconverged at iteration %d of %d\n",
				res.ConvergedAt, len(res.Curve))
			printCurve(out, res.Curve, 10)
		},
		"5": func() {
			for _, axis := range []pantheon.SweepAxis{
				pantheon.AxisBandwidth, pantheon.AxisLatency, pantheon.AxisLoss, pantheon.AxisBuffer,
			} {
				res := pantheon.RunSweep(schemes, pantheon.SweepConfig{Axis: axis, Steps: 300, Seed: *seed, Workers: *workers})
				util, lat := res.Tables()
				mustWrite(util, out)
				mustWrite(lat, out)
			}
		},
		"6": func() {
			res := pantheon.RunFig6(schemes, pantheon.Fig6Config{
				Objectives: 100, Conditions: 10, Steps: 200, Seed: *seed, Workers: *workers,
			})
			mustWrite(res.Table(), out)
		},
		"7": func() {
			cfg := pantheon.DefaultFig7Config()
			cfg.Seed = *seed
			res := pantheon.RunFig7(zoo, cfg)
			mustWrite(res.Table(), out)
		},
		"8": func() {
			res, err := pantheon.RunFig8(schemes, apps.DefaultVideoConfig())
			if err != nil {
				log.Fatal(err)
			}
			mustWrite(res.Table(), out)
		},
		"9": func() {
			mustWrite(pantheon.RunFig9(schemes, apps.DefaultRTCConfig()).Table(), out)
		},
		"10": func() {
			mustWrite(pantheon.RunFig10(schemes, apps.DefaultBulkConfig()).Table(), out)
		},
		"11": func() {
			cfg := pantheon.DefaultFairnessConfig()
			cfg.Seed = *seed
			for _, scheme := range []string{"cubic", "vegas", "bbr", "copa", "pcc-vivace", "mocc"} {
				factory := factoryFor(schemes, scheme)
				res := pantheon.RunFairness(factory, scheme, cfg)
				t := pantheon.Table{Title: "Figure 11 fairness dynamics: " + scheme,
					Header: []string{"flow", "mean Mbps (steady)", "Jain(mean)"}}
				for i, series := range res.Throughput {
					mean, _, _ := seriesStats(series[len(series)/2:])
					t.AddF(fmt.Sprintf("%s-%d", scheme, i), mean, meanOf(res.JainPerSec))
				}
				mustWrite(t, out)
			}
		},
		"12": func() {
			cfg := pantheon.DefaultFairnessConfig()
			cfg.Seed = *seed
			cfg.Workers = *workers
			mustWrite(pantheon.RunFig12(schemes, cfg).Table(), out)
		},
		"13": func() {
			mustWrite(pantheon.RunFig13(schemes, pantheon.DefaultCompeteConfig()).Table(), out)
		},
		"14": func() {
			cfg := pantheon.DefaultCompeteConfig()
			cfg.Workers = *workers
			mustWrite(pantheon.RunFig14(schemes, cfg,
				[]float64{10, 30, 50, 70, 90}).Table(), out)
		},
		"15": func() {
			cfg := pantheon.DefaultCompeteConfig()
			cfg.Workers = *workers
			mustWrite(pantheon.RunFig15(schemes, cfg,
				[]float64{20, 40, 60, 80, 100, 120}).Table(), out)
		},
		"16": func() {
			res := pantheon.RunFig16(pantheon.Fig16Config{
				Omegas: []int{3, 6, 10}, EvalObjectives: 20, EvalSteps: 150, Seed: *seed,
				Workers: *workers,
			})
			mustWrite(res.Table(), out)
		},
		"17": func() {
			mocc := zoo.MOCC()
			aurora := zoo.AuroraThroughput()
			mk := func(name string) cc.Algorithm {
				return mocc.AlgorithmFor(name, objective.ThroughputPref)
			}
			rows := datapath.MeasureOverhead([]datapath.OverheadScheme{
				{Label: "cubic", Alg: cc.NewCubic(), Mode: datapath.KernelSpace},
				{Label: "vegas", Alg: cc.NewVegas(), Mode: datapath.KernelSpace},
				{Label: "bbr", Alg: cc.NewBBR(), Mode: datapath.KernelSpace},
				{Label: "orca", Alg: schemes.OrcaAlgorithm(), Mode: datapath.KernelSpace},
				{Label: "mocc-kernel", Alg: mk("mocc-ccp"), Mode: datapath.KernelSpace},
				{Label: "pcc-vivace", Alg: cc.NewVivace(), Mode: datapath.UserSpace},
				{Label: "aurora", Alg: cc.NewRLRate("aurora", cc.PolicyFunc(aurora.Act), core.HistoryLen), Mode: datapath.UserSpace},
				{Label: "mocc-udt", Alg: mk("mocc-udt"), Mode: datapath.UserSpace},
			}, datapath.DefaultOverheadConfig())
			if err := datapath.WriteOverheadTable(out, rows); err != nil {
				log.Fatal(err)
			}
		},
		"18": func() {
			mustWrite(pantheon.RunFig18(zoo, pantheon.Fig18Config{
				EvalObjectives: 10, EvalConditions: 3, EvalSteps: 150, Seed: *seed,
			}).Table(), out)
		},
		"19": func() {
			res, err := pantheon.RunFig19(pantheon.DefaultFig19Config())
			if err != nil {
				log.Fatal(err)
			}
			mustWrite(res.Table(), out)
		},
	}

	if *fig == "all" {
		order := []string{"1a", "1b", "1c", "5", "6", "7", "8", "9", "10",
			"11", "12", "13", "14", "15", "16", "17", "18", "19"}
		for _, id := range order {
			fmt.Fprintf(out, "\n")
			runners[id]()
		}
		return
	}
	runner, ok := runners[*fig]
	if !ok {
		log.Fatalf("unknown figure %q", *fig)
	}
	runner()
}

// mustWrite renders a pantheon table, exiting on error.
func mustWrite(t pantheon.Table, out *os.File) {
	if err := t.Write(out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(out)
}

// factoryFor maps a scheme name to a constructor.
func factoryFor(s *pantheon.Schemes, name string) cc.AlgorithmFactory {
	switch name {
	case "cubic":
		return func() cc.Algorithm { return cc.NewCubic() }
	case "vegas":
		return func() cc.Algorithm { return cc.NewVegas() }
	case "bbr":
		return func() cc.Algorithm { return cc.NewBBR() }
	case "copa":
		return func() cc.Algorithm { return cc.NewCopa() }
	case "pcc-allegro":
		return func() cc.Algorithm { return cc.NewAllegro() }
	case "pcc-vivace":
		return func() cc.Algorithm { return cc.NewVivace() }
	case "mocc":
		return func() cc.Algorithm { return s.MOCCAlgorithm("mocc", objective.BalancePref) }
	default:
		log.Fatalf("unknown scheme %q", name)
		return nil
	}
}

// seriesStats returns mean/min/max of a series.
func seriesStats(xs []float64) (mean, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	lo, hi = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return sum / float64(len(xs)), lo, hi
}

// meanOf returns the mean of xs.
func meanOf(xs []float64) float64 {
	m, _, _ := seriesStats(xs)
	return m
}

// printCurve prints every nth point of a learning curve.
func printCurve(out *os.File, curve []float64, every int) {
	for i := 0; i < len(curve); i += every {
		fmt.Fprintf(out, "iter %4d  reward %.3f\n", i, curve[i])
	}
}
