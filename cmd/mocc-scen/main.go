// Command mocc-scen is the scenario subsystem's CLI: it lists generator
// families, renders generated or hand-written scenario specs, runs them on
// the packet-level simulator, evaluates scheme suites over generated
// scenarios, and drives the engine-differential fuzzer.
//
// Usage:
//
//	mocc-scen list
//	mocc-scen describe -family cellular -seed 3
//	mocc-scen describe -spec examples/scenarios/cellular.json
//	mocc-scen run -spec examples/scenarios/trace-replay.json
//	mocc-scen run -family flash-crowd -seed 7 -engine reference
//	mocc-scen suite -per-family 2 -steps 150
//	mocc-scen fuzz -n 25 -seed 1
//
// Specs that reference learned schemes (mocc, aurora-*, orca) train the
// model zoo in-process on first use (-scale quick|standard).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mocc/internal/cc"
	"mocc/internal/pantheon"
	"mocc/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mocc-scen: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "describe":
		cmdDescribe(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "suite":
		cmdSuite(os.Args[2:])
	case "fuzz":
		cmdFuzz(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mocc-scen <subcommand> [flags]

subcommands:
  list      list generator scenario families
  describe  print a scenario spec as canonical JSON (-spec file | -family f -seed n)
  run       execute a scenario on the simulator and print per-flow results
  suite     evaluate MOCC + baselines over generated scenario suites
  fuzz      differential-fuzz the simulator engine pairs with generated scenarios
            (-topo rotates the multi-link topology families)
`)
}

// loadOrGenerate resolves the shared -spec/-family/-seed flag triple into a
// spec plus the directory trace files resolve against.
func loadOrGenerate(specPath, family string, seed int64) (*scenario.Spec, string) {
	if specPath != "" {
		s, err := scenario.Load(specPath)
		if err != nil {
			log.Fatal(err)
		}
		return s, filepath.Dir(specPath)
	}
	if family == "" {
		log.Fatal("need -spec <file> or -family <name> (see `mocc-scen list`)")
	}
	s, err := scenario.Generate(scenario.Family(family), seed)
	if err != nil {
		log.Fatal(err)
	}
	return s, ""
}

func cmdList() {
	t := pantheon.Table{
		Title:  "scenario generator families",
		Header: []string{"family", "description"},
	}
	for _, f := range scenario.AllFamilies() {
		t.Add(string(f), scenario.FamilyDescription(f))
	}
	mustWrite(t)
	fmt.Println("every (family, seed) pair is a deterministic scenario: `mocc-scen describe -family <f> -seed <n>`")
}

func cmdDescribe(args []string) {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	specPath := fs.String("spec", "", "spec file to validate and reprint")
	family := fs.String("family", "", "generator family")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	s, _ := loadOrGenerate(*specPath, *family, *seed)
	data, err := s.JSON()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// zooResolver defers model-zoo construction until a spec actually names a
// learned scheme, so baseline-only runs stay instant.
func zooResolver(scale string, seed int64) scenario.SchemeResolver {
	var resolver scenario.SchemeResolver
	return func(f scenario.Flow) (cc.Algorithm, error) {
		if !pantheon.IsLearnedScheme(f.Scheme) {
			return nil, nil
		}
		if resolver == nil {
			zscale, err := parseScale(scale)
			if err != nil {
				return nil, err
			}
			log.Printf("training %s-scale model zoo for scheme %q ...", scale, f.Scheme)
			resolver = pantheon.NewSchemes(pantheon.NewZoo(zscale, seed)).ScenarioResolver()
		}
		return resolver(f)
	}
}

func parseScale(s string) (pantheon.Scale, error) {
	switch s {
	case "quick":
		return pantheon.Quick, nil
	case "standard":
		return pantheon.Standard, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want quick or standard)", s)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specPath := fs.String("spec", "", "spec file to run")
	family := fs.String("family", "", "generator family")
	seed := fs.Int64("seed", 1, "generator seed")
	engine := fs.String("engine", "fast", "simulator engine: fast | reference")
	scale := fs.String("scale", "quick", "model zoo training scale for learned schemes")
	zooSeed := fs.Int64("zoo-seed", 1, "model zoo training seed")
	workers := fs.Int("workers", 0, "topology engine workers (0 = GOMAXPROCS; results identical at every setting)")
	fs.Parse(args)

	s, baseDir := loadOrGenerate(*specPath, *family, *seed)
	res, err := scenario.Run(s, scenario.RunOptions{
		CompileOptions: scenario.CompileOptions{
			BaseDir:  baseDir,
			Resolver: zooResolver(*scale, *zooSeed),
		},
		Engine:  scenario.Engine(*engine),
		Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	mustWrite(pantheon.ScenarioResultTable(res))
}

func cmdSuite(args []string) {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	families := fs.String("families", "", "comma-separated family subset (default all)")
	perFamily := fs.Int("per-family", 3, "generated scenarios per family")
	steps := fs.Int("steps", 200, "monitor intervals per run")
	seed := fs.Int64("seed", 1, "suite seed")
	scale := fs.String("scale", "quick", "model zoo training scale")
	workers := fs.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
	fs.Parse(args)

	zscale, err := parseScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	schemes := pantheon.NewSchemes(pantheon.NewZoo(zscale, *seed))
	res, err := pantheon.RunScenarioSuite(schemes, pantheon.ScenarioSuiteConfig{
		Families:  parseFamilies(*families),
		PerFamily: *perFamily,
		Steps:     *steps,
		Seed:      *seed,
		Workers:   *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	util, lat := res.Tables()
	mustWrite(util)
	mustWrite(lat)
}

func cmdFuzz(args []string) {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	n := fs.Int("n", 25, "number of generated scenarios to diff")
	seed := fs.Int64("seed", 1, "generator seed offset")
	families := fs.String("families", "", "comma-separated family subset (default all)")
	topology := fs.Bool("topo", false, "rotate through the topology families (multi-link engines)")
	verbose := fs.Bool("v", false, "print every scenario as it passes")
	fs.Parse(args)

	cfg := scenario.FuzzConfig{N: *n, Seed: *seed, Families: parseFamilies(*families), Topo: *topology}
	if *verbose {
		cfg.Progress = func(i int, s *scenario.Spec, packets int) {
			fmt.Printf("  ok %3d  %-24s %8d pkts\n", i, s.Name, packets)
		}
	}
	res, err := scenario.Fuzz(cfg)
	if err != nil {
		log.Fatalf("FAILED after %d clean scenarios: %v", res.Scenarios, err)
	}
	fmt.Printf("fuzz: %d scenarios, %d packets through each engine, all bit-identical\n",
		res.Scenarios, res.Packets)
}

func parseFamilies(s string) []scenario.Family {
	if s == "" {
		return nil
	}
	var out []scenario.Family
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, scenario.Family(part))
		}
	}
	return out
}

func mustWrite(t pantheon.Table) {
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
