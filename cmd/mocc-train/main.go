// Command mocc-train runs MOCC's two-phase offline training (§4.2) and
// writes the trained model to a JSON file consumable by mocc.LoadModel and
// cmd/mocc-bench.
//
// Usage:
//
//	mocc-train -scale quick -out model.json
//	mocc-train -scale full -omega 36 -seed 7 -out mocc-full.json
//	mocc-train -scale standard -workers 8 -pipeline -out model.json
//	mocc-train -scale full -metrics-addr :9091 -out model.json
//
// With -metrics-addr, a long run can be watched live over HTTP: /metrics
// and /vars expose the mocc_train_* series (iterations, environment
// steps, last-iteration reward, PPO update latency) and /debug/pprof
// profiles the trainer in place.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mocc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mocc-train: ")

	var (
		scale    = flag.String("scale", "quick", "training scale: quick | standard | full")
		omega    = flag.Int("omega", 0, "override landmark objective count (0 = scale default)")
		seed     = flag.Int64("seed", 1, "training seed")
		workers  = flag.Int("workers", 0, "parallel collection + PPO update workers (0 = scale default)")
		pipeline = flag.Bool("pipeline", false, "overlap rollout collection with PPO updates")
		out      = flag.String("out", "mocc-model.json", "output model path")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		metrics  = flag.String("metrics-addr", "", "HTTP observability address serving /metrics, /vars and /debug/pprof for the live run (empty disables)")
	)
	flag.Parse()

	var opts mocc.TrainingOptions
	switch *scale {
	case "quick":
		opts = mocc.QuickTraining()
	case "standard":
		opts = mocc.QuickTraining()
		opts.Omega = 10
		opts.BootstrapIters = 12
		opts.BootstrapCycles = 3
		opts.TraverseCycles = 2
		opts.RolloutSteps = 512
		opts.EpisodeLen = 128
	case "full":
		opts = mocc.FullTraining()
	default:
		log.Fatalf("unknown scale %q (want quick, standard or full)", *scale)
	}
	if *omega > 0 {
		opts.Omega = *omega
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	opts.Pipelined = *pipeline
	opts.Seed = *seed
	if !*quiet {
		opts.Progress = func(line string) { log.Print(line) }
	}
	if *metrics != "" {
		sink := mocc.NewMetrics()
		opts.Metrics = sink
		go func() {
			log.Printf("observability on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, sink.Handler()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	start := time.Now()
	model, stats, err := mocc.TrainModelStats(opts)
	if err != nil {
		log.Fatal(err)
	}
	trainTime := time.Since(start)
	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}

	secs := trainTime.Seconds()
	fmt.Fprintf(os.Stdout, "trained omega=%d seed=%d in %s -> %s\n",
		opts.Omega, opts.Seed, trainTime.Round(time.Millisecond), *out)
	fmt.Fprintf(os.Stdout,
		"throughput: %d iters, %d env steps in %s (%.1f iters/s, %.0f steps/s) workers=%d pipeline=%v\n",
		stats.TotalIters(), stats.EnvSteps, trainTime.Round(time.Millisecond),
		float64(stats.TotalIters())/secs, float64(stats.EnvSteps)/secs,
		opts.Workers, opts.Pipelined)
}
