// Command mocc-demo runs a live congestion-controlled transfer over a real
// UDP loopback socket: it starts a receiver, paces packets under the chosen
// controller, and prints the behaviour. This is the user-space (UDT-style)
// deployment path of §5 exercised end to end.
//
// The mocc scheme goes through the public surface — a Library, a registered
// *mocc.App handle, and the mocc/transport socket loop — exactly as an
// embedding application would; classical schemes run on the internal
// datapath harness.
//
// Usage:
//
//	mocc-demo -scheme cubic -duration 2s
//	mocc-demo -scheme mocc -weights "0.8,0.1,0.1" -duration 2s
//	mocc-demo -scheme mocc -model mocc-model.json -drop 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mocc"
	"mocc/internal/cc"
	"mocc/internal/datapath"
	"mocc/internal/objective"
	"mocc/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mocc-demo: ")

	var (
		scheme   = flag.String("scheme", "mocc", "controller: mocc | cubic | vegas | bbr | copa | pcc-allegro | pcc-vivace")
		weights  = flag.String("weights", "0.8,0.1,0.1", "MOCC preference <thr,lat,loss>")
		model    = flag.String("model", "", "pre-trained model file (empty = quick in-process training)")
		duration = flag.Duration("duration", 2*time.Second, "transfer duration")
		drop     = flag.Float64("drop", 0, "receiver drop probability (emulated loss)")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{DropProb: *drop, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	log.Printf("receiver on %s (drop=%.1f%%)", recv.Addr(), *drop*100)

	if *scheme == "mocc" {
		runMOCC(recv.Addr(), *weights, *model, *duration, *seed)
		return
	}
	runClassical(recv.Addr(), *scheme, *duration)
}

// runMOCC hosts a registered application handle over the public transport
// binding: Library → Register → transport.Send → App.Stats.
func runMOCC(addr, weights, modelPath string, duration time.Duration, seed int64) {
	w, err := objective.Parse(weights)
	if err != nil {
		log.Fatal(err)
	}
	var model *mocc.Model
	if modelPath != "" {
		model, err = mocc.LoadModelFile(modelPath)
	} else {
		log.Print("no -model given; quick-training MOCC in process (seconds)...")
		opts := mocc.QuickTraining()
		opts.Seed = seed
		model, err = mocc.TrainModel(opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	// Loopback RTTs are microseconds; seed the initial rate accordingly
	// (the library default of 40ms suits WAN paths).
	lib, err := mocc.New(model, mocc.WithInitialRTT(time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	app, err := lib.Register(mocc.Weights{Thr: w.Thr, Lat: w.Lat, Loss: w.Loss})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Unregister()

	stats, err := transport.Send(addr, app, duration, transport.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme      mocc%v (public handle API)\n", w)
	fmt.Printf("duration    %s\n", stats.Duration.Round(time.Millisecond))
	fmt.Printf("sent        %d packets\n", stats.Sent)
	fmt.Printf("acked       %d packets\n", stats.Acked)
	fmt.Printf("lost        %d packets (inferred)\n", stats.Lost)
	fmt.Printf("avg RTT     %s\n", stats.AvgRTT.Round(time.Microsecond))
	fmt.Printf("throughput  %.1f Mbps\n", stats.ThroughputMbps)

	s := app.Stats()
	fmt.Println("app telemetry (App.Stats):")
	fmt.Printf("  intervals  %d\n", s.Reports)
	fmt.Printf("  thr        %.0f pps\n", s.Throughput)
	fmt.Printf("  loss       %.2f%%\n", s.LossRate*100)
	fmt.Printf("  avg rtt    %s (min %s)\n", s.AvgRTT.Round(time.Microsecond), s.MinRTT.Round(time.Microsecond))
	fmt.Printf("  rate       %.0f pps now, %.0f pps mean\n", s.Rate, s.MeanRate)
}

// runClassical drives a baseline controller over the internal datapath
// harness (these schemes have no preference and no handle).
func runClassical(addr, scheme string, duration time.Duration) {
	var alg cc.Algorithm
	switch scheme {
	case "cubic":
		alg = cc.NewCubic()
	case "vegas":
		alg = cc.NewVegas()
	case "bbr":
		alg = cc.NewBBR()
	case "copa":
		alg = cc.NewCopa()
	case "pcc-allegro":
		alg = cc.NewAllegro()
	case "pcc-vivace":
		alg = cc.NewVivace()
	default:
		log.Fatalf("unknown scheme %q", scheme)
	}

	stats, err := datapath.RunTransfer(datapath.TransferConfig{
		Addr:     addr,
		Alg:      alg,
		Duration: duration,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme      %s\n", alg.Name())
	fmt.Printf("duration    %s\n", stats.Duration.Round(time.Millisecond))
	fmt.Printf("sent        %d packets\n", stats.Sent)
	fmt.Printf("acked       %d packets\n", stats.Acked)
	fmt.Printf("lost        %d packets (inferred)\n", stats.Lost)
	fmt.Printf("avg RTT     %s\n", stats.AvgRTT.Round(time.Microsecond))
	fmt.Printf("throughput  %.1f Mbps\n", stats.ThroughputMbps)
	if n := len(stats.Reports); n > 0 {
		fmt.Println("last monitor intervals:")
		start := n - 5
		if start < 0 {
			start = 0
		}
		for i := start; i < n; i++ {
			r := stats.Reports[i]
			fmt.Printf("  MI %2d: rate %.0f pps, delivered %.0f pps, rtt %.2f ms, loss %.1f%%\n",
				i, r.SendRate, r.Throughput, r.AvgRTT*1000, r.LossRate*100)
		}
	}
}
