// Command mocc-demo runs a live congestion-controlled transfer over a real
// UDP loopback socket: it starts a receiver, paces packets under the chosen
// controller, and prints the per-interval behaviour. This is the
// user-space (UDT-style) deployment path of §5 exercised end to end.
//
// Usage:
//
//	mocc-demo -scheme cubic -duration 2s
//	mocc-demo -scheme mocc -weights "0.8,0.1,0.1" -duration 2s
//	mocc-demo -scheme mocc -model mocc-model.json -drop 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/datapath"
	"mocc/internal/nn"
	"mocc/internal/objective"
	"mocc/internal/pantheon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mocc-demo: ")

	var (
		scheme   = flag.String("scheme", "mocc", "controller: mocc | cubic | vegas | bbr | copa | pcc-allegro | pcc-vivace")
		weights  = flag.String("weights", "0.8,0.1,0.1", "MOCC preference <thr,lat,loss>")
		model    = flag.String("model", "", "pre-trained model file (empty = quick in-process training)")
		duration = flag.Duration("duration", 2*time.Second, "transfer duration")
		drop     = flag.Float64("drop", 0, "receiver drop probability (emulated loss)")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	alg, err := buildAlgorithm(*scheme, *weights, *model, *seed)
	if err != nil {
		log.Fatal(err)
	}

	recv, err := datapath.StartReceiver("127.0.0.1:0", *drop, *seed)
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	log.Printf("receiver on %s (drop=%.1f%%)", recv.Addr(), *drop*100)

	stats, err := datapath.RunTransfer(datapath.TransferConfig{
		Addr:     recv.Addr(),
		Alg:      alg,
		Duration: *duration,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme      %s\n", alg.Name())
	fmt.Printf("duration    %s\n", stats.Duration.Round(time.Millisecond))
	fmt.Printf("sent        %d packets\n", stats.Sent)
	fmt.Printf("acked       %d packets\n", stats.Acked)
	fmt.Printf("lost        %d packets (inferred)\n", stats.Lost)
	fmt.Printf("avg RTT     %s\n", stats.AvgRTT.Round(time.Microsecond))
	fmt.Printf("throughput  %.1f Mbps\n", stats.ThroughputMbps)
	if n := len(stats.Reports); n > 0 {
		fmt.Println("last monitor intervals:")
		start := n - 5
		if start < 0 {
			start = 0
		}
		for i := start; i < n; i++ {
			r := stats.Reports[i]
			fmt.Printf("  MI %2d: rate %.0f pps, delivered %.0f pps, rtt %.2f ms, loss %.1f%%\n",
				i, r.SendRate, r.Throughput, r.AvgRTT*1000, r.LossRate*100)
		}
	}
}

// buildAlgorithm resolves a scheme name into a controller, training or
// loading MOCC as needed.
func buildAlgorithm(scheme, weights, modelPath string, seed int64) (cc.Algorithm, error) {
	switch scheme {
	case "cubic":
		return cc.NewCubic(), nil
	case "vegas":
		return cc.NewVegas(), nil
	case "bbr":
		return cc.NewBBR(), nil
	case "copa":
		return cc.NewCopa(), nil
	case "pcc-allegro":
		return cc.NewAllegro(), nil
	case "pcc-vivace":
		return cc.NewVivace(), nil
	case "mocc":
		w, err := objective.Parse(weights)
		if err != nil {
			return nil, err
		}
		model := core.NewModel(core.HistoryLen, seed)
		if modelPath != "" {
			snap, err := nn.LoadFile(modelPath)
			if err != nil {
				return nil, err
			}
			if err := model.Restore(snap); err != nil {
				return nil, err
			}
		} else {
			log.Print("no -model given; quick-training MOCC in process (seconds)...")
			zoo := pantheon.NewZoo(pantheon.Quick, seed)
			model = zoo.MOCC()
		}
		return model.AlgorithmFor(fmt.Sprintf("mocc%v", w), w), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}
