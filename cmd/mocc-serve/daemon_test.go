package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"mocc"
	"mocc/transport"
)

// tinyModel trains the smallest schedule the trainer accepts — the daemon
// tests exercise plumbing, not model quality.
func tinyModel(t *testing.T) *mocc.Model {
	t.Helper()
	opts := mocc.QuickTraining()
	opts.BootstrapIters = 1
	opts.BootstrapCycles = 1
	opts.TraverseCycles = 0
	opts.RolloutSteps = 64
	opts.EpisodeLen = 32
	opts.Workers = 1
	m, err := mocc.TrainModel(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDaemonShutdownOrdering runs a complete in-process daemon — UDP rate
// server, metrics HTTP server, stats ticker, canary, state snapshots —
// drives real flows through it, scrapes the endpoints, and then asserts
// the teardown happens in strict dependency order with no goroutine
// leaking past shutdown.
func TestDaemonShutdownOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	model := tinyModel(t)
	before := runtime.NumGoroutine()

	statePath := filepath.Join(t.TempDir(), "daemon.state")
	cfg := daemonConfig{
		addr:        "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
		opts: mocc.ServingOptions{
			Deadline: 25 * time.Millisecond,
			IdleTTL:  time.Minute,
			Canary:   &mocc.CanaryConfig{Window: 200 * time.Millisecond},
		},
		statePath: statePath,
		statsEach: 5 * time.Millisecond, // exercise the ticker during the run
		logf:      func(string, ...any) {},
	}
	d, err := newDaemon(model, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.start()
	serveDone := make(chan struct{})
	go func() {
		d.serve()
		close(serveDone)
	}()

	// Drive real flows through the UDP path.
	conn, err := transport.DialServe(d.srv.Addr(), transport.ServeConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	flow := conn.Flow(7, mocc.ThroughputPreference, transport.FailoverConfig{Timeout: time.Second})
	for i := 0; i < 20; i++ {
		if _, err := flow.Report(mocc.Status{
			Duration: 20 * time.Millisecond, PacketsSent: 100, PacketsAcked: 95,
			PacketsLost: 5, AvgRTT: 30 * time.Millisecond, MinRTT: 20 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := flow.Stats(); st.Served == 0 {
		t.Fatalf("daemon served nothing: %+v", st)
	}

	// Scrape the exposition endpoints while flows are live.
	base := "http://" + d.webLis.Addr().String()
	metrics := httpGet(t, base+"/metrics", http.StatusOK)
	for _, series := range []string{
		"mocc_serve_reports_total", "mocc_serve_epoch",
		"mocc_daemon_replies_total", "mocc_fleet_apps",
		"mocc_serve_decision_latency_seconds_count",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if hz := httpGet(t, base+"/healthz", http.StatusOK); !strings.Contains(hz, `"status": "ok"`) {
		t.Errorf("healthz: %s", hz)
	}
	conn.Close()

	d.shutdown()
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop still running after shutdown")
	}
	want := []string{"background", "metrics-http", "rate-server", "library", "state"}
	got := d.shutdownTrace()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("teardown order %v, want %v", got, want)
	}
	d.shutdown() // idempotent
	if again := d.shutdownTrace(); len(again) != len(want) {
		t.Fatalf("second shutdown re-ran teardown: %v", again)
	}

	// The metrics port must be closed, the state snapshot written, and the
	// daemon's goroutines gone (settling briefly for runtime bookkeeping).
	if c, err := net.Dial("tcp", d.webLis.Addr().String()); err == nil {
		c.Close()
		t.Error("metrics listener still accepting after shutdown")
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Errorf("no shutdown state snapshot: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked past shutdown: %d before, %d after", before, n)
	}
}

func httpGet(t *testing.T, url string, wantCode int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantCode, body)
	}
	return string(body)
}
