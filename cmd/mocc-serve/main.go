// Command mocc-serve hosts a MOCC library as a shared rate-decision daemon:
// one trained model, one UDP socket, any number of flows. Each flow sends
// report datagrams (its preference plus one monitor interval of
// measurements, see mocc/internal/datapath WireReport) and gets a rate
// datagram back; concurrent flows' decisions are coalesced into batched
// forward passes by the serving engine (mocc.WithServing).
//
// Usage:
//
//	mocc-serve -addr :9053 -model mocc-model.json
//	mocc-serve -addr :9053 -model mocc-model.json -watch 5s -idle-ttl 1m
//	mocc-serve -addr :9053 -scale quick            # train in process
//	mocc-serve -addr :9053 -state mocc-serve.state # crash-safe restart
//	mocc-serve -addr :9053 -metrics-addr :9090     # scrape endpoints
//
// Flows are registered lazily on their first report, keyed by (source
// address, flow id); an idle flow is evicted after -idle-ttl and simply
// re-registers on its next report. With -watch, the model file is polled
// and every change is hot-swapped into the live shards (Library.Publish)
// after validation; a partially written file is skipped and retried on the
// next poll, so writers should write-then-rename (mocc-train does). Drive
// it with `mocc-bench -serve-addr` for load generation.
//
// Resilience: the daemon sheds decisions under overload (-max-queue,
// -deadline; shed flows keep their previous rate), watches every published
// epoch with a canary that auto-rolls back a model whose fleet fault rate
// spikes (-canary-window, 0 disables), and — with -state — atomically
// snapshots the served model+epoch on every change so a crashed daemon
// restarts exactly where it stopped. Malformed datagrams are counted, never
// fatal (-stats prints all counters).
//
// Observability: -metrics-addr serves /metrics (Prometheus text format),
// /vars (flat JSON), /events (structured event tail: epoch publishes,
// rollbacks, sheds, guard trips), /healthz (canary/overload-aware
// liveness), /flightrec (per-flow decision flight recorder dumps) and
// /debug/pprof/*. The -stats ticker reads the same counters the scrape
// endpoints read, so the two views can never disagree.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mocc"
)

// logPrintf is the daemon's default log sink (tests substitute their own).
func logPrintf(format string, args ...any) { log.Printf(format, args...) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("mocc-serve: ")

	var (
		addr        = flag.String("addr", ":9053", "UDP listen address")
		metricsAddr = flag.String("metrics-addr", "", "HTTP observability address serving /metrics, /vars, /events, /healthz, /flightrec and /debug/pprof (empty disables)")
		modelPath   = flag.String("model", "", "model file (mocc-train output); empty trains in process")
		scale       = flag.String("scale", "quick", "in-process training scale when -model is empty: quick | standard")
		seed        = flag.Int64("seed", 1, "in-process training seed")
		shards      = flag.Int("shards", 0, "serving shards (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 0, "max coalesced decisions per forward pass (0 = default 64)")
		flush       = flag.Duration("flush", 0, "micro-batch flush deadline (0 = default 200µs)")
		maxQueue    = flag.Int("max-queue", 0, "per-shard queue bound, shed beyond it (0 = default 4096, negative = unbounded)")
		deadline    = flag.Duration("deadline", 25*time.Millisecond, "shed decisions queued longer than this (0 disables)")
		idleTTL     = flag.Duration("idle-ttl", time.Minute, "evict flows idle this long (0 disables)")
		watch       = flag.Duration("watch", 0, "poll -model for changes and hot-swap (0 disables)")
		statePath   = flag.String("state", "", "crash-safe snapshot file: persist model+epoch, resume on restart (empty disables)")
		canaryWin   = flag.Duration("canary-window", 3*time.Second, "epoch canary observation window (0 disables auto-rollback)")
		canaryRate  = flag.Float64("canary-fault-rate", 0.05, "fleet fault rate above which a canary epoch is rolled back")
		statsEach   = flag.Duration("stats", 10*time.Second, "print serving/fleet stats this often (0 disables)")
	)
	flag.Parse()

	model, initialEpoch, resumed, err := resolveModel(*statePath, *modelPath, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := daemonConfig{
		addr:        *addr,
		metricsAddr: *metricsAddr,
		opts: mocc.ServingOptions{
			Shards:        *shards,
			MaxBatch:      *maxBatch,
			FlushInterval: *flush,
			MaxQueue:      *maxQueue,
			Deadline:      *deadline,
			IdleTTL:       *idleTTL,
		},
		statePath: *statePath,
		modelPath: *modelPath,
		watch:     *watch,
		statsEach: *statsEach,
	}
	if *canaryWin > 0 {
		cfg.opts.Canary = &mocc.CanaryConfig{
			Window:       *canaryWin,
			MaxFaultRate: *canaryRate,
		}
	}

	d, err := newDaemon(model, initialEpoch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if resumed {
		log.Printf("resumed epoch %d from %s", initialEpoch, *statePath)
	}
	d.saveState("startup")
	log.Printf("serving on %s (%d shards)", d.srv.Addr(), d.lib.ServingStats().Shards)
	d.start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("shutting down")
		d.shutdown()
	}()

	d.serve()
	// Covers an external close of the UDP socket too; after a signal this
	// blocks until the handler's shutdown completes (sync.Once), so main
	// never exits mid-teardown.
	d.shutdown()
	d.logStats()
}

// resolveModel picks the serving model and its starting epoch: a readable
// -state snapshot wins (crash-safe resume), then -model, then in-process
// training.
func resolveModel(statePath, modelPath, scale string, seed int64) (m *mocc.Model, epoch uint64, resumed bool, err error) {
	if statePath != "" {
		if _, serr := os.Stat(statePath); serr == nil {
			epoch, m, err = mocc.LoadServingState(statePath)
			if err == nil {
				return m, epoch, true, nil
			}
			// A corrupted snapshot must not keep the daemon down: log and
			// fall through to the model file / training path.
			log.Printf("state: ignoring %s: %v", statePath, err)
		}
	}
	m, err = loadOrTrain(modelPath, scale, seed)
	return m, 0, false, err
}

// loadOrTrain resolves the serving model from a file or in-process training.
func loadOrTrain(path, scale string, seed int64) (*mocc.Model, error) {
	if path != "" {
		log.Printf("loading model %s", path)
		return mocc.LoadModelFile(path)
	}
	opts := mocc.QuickTraining()
	if scale == "standard" {
		opts = mocc.FullTraining()
	}
	opts.Seed = seed
	log.Printf("training %s model in process (seed %d)", scale, seed)
	return mocc.TrainModel(opts)
}

// watchModel polls the model file and hot-swaps every change into the live
// shards, validate-then-publish. A file that fails to load or validate —
// typically a writer caught mid-write — is NOT treated as seen: the mtime
// marker only advances on a successful publish, so the torn read is retried
// on the next poll (by which point an atomic writer has renamed the
// complete file into place). The error is logged once per distinct cause,
// not once per poll.
func watchModel(lib *mocc.Library, path string, every time.Duration, stop chan struct{}, saveState func(string)) {
	var published time.Time
	if fi, err := os.Stat(path); err == nil {
		published = fi.ModTime()
	}
	lastErr := ""
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		fi, err := os.Stat(path)
		if err != nil || !fi.ModTime().After(published) {
			continue
		}
		m, err := mocc.LoadModelFile(path)
		if err == nil {
			var epoch uint64
			if epoch, err = lib.Publish(m); err == nil {
				published = fi.ModTime()
				lastErr = ""
				log.Printf("hot-swapped %s as epoch %d", path, epoch)
				saveState("hot-swap")
				continue
			}
		}
		// Skip this poll; retry while the file keeps failing. Writers
		// should write to a temp file and rename (mocc-train does), which
		// makes a torn read a one-poll transient.
		if msg := err.Error(); msg != lastErr {
			lastErr = msg
			log.Printf("watch: skipping %s (will retry): %v", path, err)
		}
	}
}
