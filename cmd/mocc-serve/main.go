// Command mocc-serve hosts a MOCC library as a shared rate-decision daemon:
// one trained model, one UDP socket, any number of flows. Each flow sends
// report datagrams (its preference plus one monitor interval of
// measurements, see mocc/internal/datapath WireReport) and gets a rate
// datagram back; concurrent flows' decisions are coalesced into batched
// forward passes by the serving engine (mocc.WithServing).
//
// Usage:
//
//	mocc-serve -addr :9053 -model mocc-model.json
//	mocc-serve -addr :9053 -model mocc-model.json -watch 5s -idle-ttl 1m
//	mocc-serve -addr :9053 -scale quick            # train in process
//
// Flows are registered lazily on their first report, keyed by (source
// address, flow id); an idle flow is evicted after -idle-ttl and simply
// re-registers on its next report. With -watch, the model file is polled
// and every change is hot-swapped into the live shards (Library.Publish):
// flows keep reporting through the swap and never observe a torn model.
// Drive it with `mocc-bench -serve-addr` for load generation.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mocc"
	"mocc/internal/datapath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mocc-serve: ")

	var (
		addr      = flag.String("addr", ":9053", "UDP listen address")
		modelPath = flag.String("model", "", "model file (mocc-train output); empty trains in process")
		scale     = flag.String("scale", "quick", "in-process training scale when -model is empty: quick | standard")
		seed      = flag.Int64("seed", 1, "in-process training seed")
		shards    = flag.Int("shards", 0, "serving shards (0 = GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 0, "max coalesced decisions per forward pass (0 = default 64)")
		flush     = flag.Duration("flush", 0, "micro-batch flush deadline (0 = default 200µs)")
		idleTTL   = flag.Duration("idle-ttl", time.Minute, "evict flows idle this long (0 disables)")
		watch     = flag.Duration("watch", 0, "poll -model for changes and hot-swap (0 disables)")
		statsEach = flag.Duration("stats", 10*time.Second, "print serving/fleet stats this often (0 disables)")
	)
	flag.Parse()

	model, err := loadOrTrain(*modelPath, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := mocc.New(model, mocc.WithServing(mocc.ServingOptions{
		Shards:        *shards,
		MaxBatch:      *maxBatch,
		FlushInterval: *flush,
		IdleTTL:       *idleTTL,
	}))
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	udpAddr, err := net.ResolveUDPAddr("udp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (%d shards)", conn.LocalAddr(), lib.ServingStats().Shards)

	d := &daemon{lib: lib, conn: conn, sessions: make(map[sessionKey]*session)}
	stop := make(chan struct{})
	var bg sync.WaitGroup

	if *watch > 0 && *modelPath != "" {
		bg.Add(1)
		go func() {
			defer bg.Done()
			d.watchModel(*modelPath, *watch, stop)
		}()
	}
	if *statsEach > 0 {
		bg.Add(1)
		go func() {
			defer bg.Done()
			tick := time.NewTicker(*statsEach)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					d.logStats()
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("shutting down")
		close(stop)
		conn.Close() // unblocks the read loop
	}()

	d.readLoop(stop)
	bg.Wait()
	d.closeSessions()
	d.logStats()
}

// loadOrTrain resolves the serving model.
func loadOrTrain(path, scale string, seed int64) (*mocc.Model, error) {
	if path != "" {
		log.Printf("loading model %s", path)
		return mocc.LoadModelFile(path)
	}
	opts := mocc.QuickTraining()
	if scale == "standard" {
		opts = mocc.FullTraining()
	}
	opts.Seed = seed
	log.Printf("training %s model in process (seed %d)", scale, seed)
	return mocc.TrainModel(opts)
}

// sessionKey identifies a flow: the datagram's source address plus its
// self-assigned flow id (many flows may share one socket).
type sessionKey struct {
	addr string
	flow uint64
}

// session is one registered flow: its library handle and the channel its
// worker goroutine consumes, so a slow Report (one batch flush) never
// blocks the socket read loop.
type session struct {
	app  *mocc.App
	addr *net.UDPAddr
	ch   chan reportMsg
	w    mocc.Weights
}

type reportMsg struct {
	seq   uint64
	nanos int64
	rep   datapath.WireReport
}

type daemon struct {
	lib  *mocc.Library
	conn *net.UDPConn

	mu       sync.Mutex
	sessions map[sessionKey]*session

	rejected atomic.Int64 // registrations refused (invalid weights)
	dropped  atomic.Int64 // reports dropped on a full session queue
	replies  atomic.Int64 // rate datagrams sent
}

// readLoop is the socket hot path: decode, demux to the session worker,
// never block.
func (d *daemon) readLoop(stop chan struct{}) {
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-stop:
				return
			default:
			}
			log.Printf("read: %v", err)
			return
		}
		seq, nanos, rep, ok := datapath.DecodeReport(buf[:n])
		if !ok {
			continue
		}
		s := d.lookup(sessionKey{raddr.String(), rep.Flow}, raddr, rep)
		if s == nil {
			continue
		}
		select {
		case s.ch <- reportMsg{seq: seq, nanos: nanos, rep: rep}:
		default:
			d.dropped.Add(1) // backpressure: drop rather than stall the socket
		}
	}
}

// lookup returns the flow's session, registering it on first contact.
func (d *daemon) lookup(key sessionKey, raddr *net.UDPAddr, rep datapath.WireReport) *session {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sessions[key]; ok {
		return s
	}
	w := mocc.Weights{Thr: rep.Thr, Lat: rep.Lat, Loss: rep.Loss}
	app, err := d.lib.Register(w)
	if err != nil {
		d.rejected.Add(1)
		return nil
	}
	laddr := *raddr
	s := &session{app: app, addr: &laddr, ch: make(chan reportMsg, 16), w: w}
	d.sessions[key] = s
	go d.runSession(key, s)
	return s
}

// drop removes a torn-down session so a later report re-registers.
func (d *daemon) drop(key sessionKey, s *session) {
	d.mu.Lock()
	if d.sessions[key] == s {
		delete(d.sessions, key)
	}
	d.mu.Unlock()
}

// runSession serializes one flow's Reports and writes the rate replies.
func (d *daemon) runSession(key sessionKey, s *session) {
	out := make([]byte, datapath.WireRateBytes)
	for m := range s.ch {
		if w := (mocc.Weights{Thr: m.rep.Thr, Lat: m.rep.Lat, Loss: m.rep.Loss}); w != s.w {
			if err := s.app.SetWeights(w); err == nil {
				s.w = w
			}
		}
		rate, err := s.app.Report(mocc.Status{
			Duration:     time.Duration(m.rep.DurationNs),
			PacketsSent:  m.rep.Sent,
			PacketsAcked: m.rep.Acked,
			PacketsLost:  m.rep.Lost,
			AvgRTT:       time.Duration(m.rep.AvgRTTNs),
			MinRTT:       time.Duration(m.rep.MinRTTNs),
		})
		if err != nil {
			// Evicted by the idle janitor (or unregistered): tear the
			// session down; the flow's next report re-registers. Other
			// errors are malformed statuses — ignore the report.
			if _, alive := d.lib.App(s.app.ID()); !alive {
				d.drop(key, s)
				return
			}
			continue
		}
		datapath.EncodeRate(out, m.seq, m.nanos, m.rep.Flow, rate, d.lib.Epoch())
		if _, err := d.conn.WriteToUDP(out, s.addr); err == nil {
			d.replies.Add(1)
		}
	}
}

// watchModel polls the model file and hot-swaps every change into the live
// shards.
func (d *daemon) watchModel(path string, every time.Duration, stop chan struct{}) {
	var lastMod time.Time
	if fi, err := os.Stat(path); err == nil {
		lastMod = fi.ModTime()
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		fi, err := os.Stat(path)
		if err != nil || !fi.ModTime().After(lastMod) {
			continue
		}
		lastMod = fi.ModTime()
		m, err := mocc.LoadModelFile(path)
		if err != nil {
			log.Printf("watch: reload %s: %v", path, err)
			continue
		}
		epoch, err := d.lib.Publish(m)
		if err != nil {
			log.Printf("watch: publish: %v", err)
			continue
		}
		log.Printf("hot-swapped %s as epoch %d", path, epoch)
	}
}

// closeSessions stops every session worker after the read loop has exited.
func (d *daemon) closeSessions() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for key, s := range d.sessions {
		close(s.ch)
		delete(d.sessions, key)
	}
}

func (d *daemon) logStats() {
	st := d.lib.ServingStats()
	fl := d.lib.FleetStats()
	avg := 0.0
	if st.Batches > 0 {
		avg = float64(st.Reports) / float64(st.Batches)
	}
	log.Printf("epoch %d | flows %d | reports %d (batches %d, avg %.1f, max %d) | replies %d dropped %d rejected %d | evicted %d | fleet thr %.0f pkts/s loss %.3f",
		st.Epoch, fl.Apps, st.Reports, st.Batches, avg, st.MaxBatch,
		d.replies.Load(), d.dropped.Load(), d.rejected.Load(), st.Evicted, fl.Throughput, fl.LossRate)
}
