package main

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"mocc"
	"mocc/transport"
)

// daemonConfig is the daemon's flag surface, split from flag parsing so
// tests can run a complete in-process daemon on loopback ports.
type daemonConfig struct {
	addr        string // UDP listen address
	metricsAddr string // HTTP observability address ("" disables)
	opts        mocc.ServingOptions
	statePath   string
	modelPath   string // watched for hot-swaps when watch > 0
	watch       time.Duration
	statsEach   time.Duration
	logf        func(format string, args ...any) // defaults to log.Printf
}

// daemon owns a serving library, its UDP rate server and the observability
// HTTP server, with one strictly ordered shutdown path (see shutdown).
type daemon struct {
	cfg daemonConfig
	met *mocc.Metrics
	lib *mocc.Library
	srv *transport.RateServer

	web     *http.Server
	webLis  net.Listener
	webDone chan struct{}

	stop    chan struct{} // stops the stats ticker and the model watcher
	bg      sync.WaitGroup
	stateMu sync.Mutex

	closeOnce sync.Once
	traceMu   sync.Mutex
	trace     []string // ordered teardown steps, asserted by the shutdown test
}

// newDaemon wires the library, the UDP socket and (when configured) the
// metrics listener. Nothing is served yet — call start then serve.
func newDaemon(model *mocc.Model, initialEpoch uint64, cfg daemonConfig) (*daemon, error) {
	if cfg.logf == nil {
		cfg.logf = logPrintf
	}
	d := &daemon{
		cfg:  cfg,
		met:  mocc.NewMetrics(),
		stop: make(chan struct{}),
	}
	cfg.opts.InitialEpoch = initialEpoch
	if cfg.opts.Canary != nil {
		// The canary monitor runs inside the library; the daemon rides
		// along to log and re-snapshot. Copy the config so the caller's
		// struct is not mutated.
		c := *cfg.opts.Canary
		user := c.OnRollback
		c.OnRollback = func(ev mocc.RollbackEvent) {
			d.cfg.logf("canary: rolled back epoch %d -> %d (%d faults in %d reports)",
				ev.From, ev.To, ev.Faults, ev.Reports)
			d.saveState("canary rollback")
			if user != nil {
				user(ev)
			}
		}
		cfg.opts.Canary = &c
	}
	lib, err := mocc.New(model,
		mocc.WithServing(cfg.opts),
		mocc.WithObservability(mocc.ObservabilityOptions{Metrics: d.met}))
	if err != nil {
		return nil, err
	}
	d.lib = lib

	udpAddr, err := net.ResolveUDPAddr("udp", cfg.addr)
	if err != nil {
		lib.Close()
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		lib.Close()
		return nil, err
	}
	d.srv = transport.NewRateServer(lib, conn)
	d.srv.RegisterMetrics(d.met)

	if cfg.metricsAddr != "" {
		lis, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			d.srv.Close()
			lib.Close()
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		d.webLis = lis
		d.web = &http.Server{Handler: lib.Handler()}
		d.webDone = make(chan struct{})
	}
	return d, nil
}

// start launches the background goroutines: the metrics HTTP server, the
// model watcher and the stats ticker.
func (d *daemon) start() {
	if d.web != nil {
		go func() {
			defer close(d.webDone)
			d.web.Serve(d.webLis) // returns on web.Close
		}()
		d.cfg.logf("observability on http://%s/metrics", d.webLis.Addr())
	}
	if d.cfg.watch > 0 && d.cfg.modelPath != "" {
		d.bg.Add(1)
		go func() {
			defer d.bg.Done()
			watchModel(d.lib, d.cfg.modelPath, d.cfg.watch, d.stop, d.saveState)
		}()
	}
	if d.cfg.statsEach > 0 {
		d.bg.Add(1)
		go func() {
			defer d.bg.Done()
			tick := time.NewTicker(d.cfg.statsEach)
			defer tick.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-tick.C:
					d.logStats()
				}
			}
		}()
	}
}

// serve blocks in the UDP read loop until the socket closes (shutdown, or
// an external close of the conn).
func (d *daemon) serve() { d.srv.Serve() }

// shutdown tears the daemon down in dependency order, exactly once
// (concurrent callers block until the first call completes):
//
//  1. background — stats ticker and model watcher joined, so nothing
//     logs, scrapes or publishes mid-teardown;
//  2. metrics-http — scrape endpoints close before the library state
//     they read goes away;
//  3. rate-server — socket closed, session workers joined: no goroutine
//     can write to the engine past this point;
//  4. library — canary monitor and idle janitor joined, serving engine
//     drained and closed;
//  5. state — final crash-safe snapshot of the served model + epoch.
func (d *daemon) shutdown() {
	d.closeOnce.Do(func() {
		close(d.stop)
		d.bg.Wait()
		d.step("background")
		if d.web != nil {
			d.web.Close()
			<-d.webDone
			d.step("metrics-http")
		}
		d.srv.Close()
		d.step("rate-server")
		d.lib.Close()
		d.step("library")
		d.saveState("shutdown")
		d.step("state")
	})
}

// step records one completed teardown stage.
func (d *daemon) step(name string) {
	d.traceMu.Lock()
	d.trace = append(d.trace, name)
	d.traceMu.Unlock()
}

// shutdownTrace returns the teardown stages completed so far, in order.
func (d *daemon) shutdownTrace() []string {
	d.traceMu.Lock()
	defer d.traceMu.Unlock()
	return append([]string(nil), d.trace...)
}

// saveState atomically snapshots the served model + epoch (no-op without
// -state). Serialized so the watcher, the canary and shutdown cannot
// interleave half-written snapshots.
func (d *daemon) saveState(reason string) {
	if d.cfg.statePath == "" {
		return
	}
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	if err := mocc.SaveServingState(d.cfg.statePath, d.lib.Epoch(), d.lib.Model()); err != nil {
		d.cfg.logf("state: %v", err)
		return
	}
	d.cfg.logf("state: snapshotted epoch %d (%s)", d.lib.Epoch(), reason)
}

// logStats prints the one-line serving/fleet summary. It reads the same
// atomics the /metrics CounterFuncs read at scrape time, so the ticker
// and the Prometheus endpoint can never disagree.
func (d *daemon) logStats() {
	st := d.lib.ServingStats()
	fl := d.lib.FleetStats()
	ds := d.srv.Stats()
	avg := 0.0
	if st.Batches > 0 {
		avg = float64(st.Reports) / float64(st.Batches)
	}
	d.cfg.logf("epoch %d | flows %d | reports %d (batches %d, avg %.1f, max %d) | shed %d (queue %d deadline %d, queued %d) | rollbacks %d panics %d restarts %d | replies %d dropped %d rejected %d malformed %d foreign %d | evicted %d | fleet thr %.0f pkts/s loss %.3f degraded %d",
		st.Epoch, fl.Apps, st.Reports, st.Batches, avg, st.MaxBatch,
		st.Shed(), st.ShedQueue, st.ShedDeadline, st.Queued,
		st.Rollbacks, st.Panics, st.Restarts,
		ds.Replies, ds.Dropped, ds.Rejected, ds.Malformed, ds.Foreign,
		st.Evicted, fl.Throughput, fl.LossRate, fl.FallbackActive)
}
