// Command sepcheck is a development aid: it trains the zoo at a chosen
// scale and prints the preference separation of the MOCC variants, the
// quantity behind Figures 5, 13 and 14.
package main

import (
	"flag"
	"fmt"
	"time"

	"mocc/internal/objective"
	"mocc/internal/pantheon"
	"mocc/internal/trace"
)

func main() {
	scale := flag.String("scale", "standard", "quick | standard")
	flag.Parse()
	zscale := pantheon.Standard
	if *scale == "quick" {
		zscale = pantheon.Quick
	}
	start := time.Now()
	zoo := pantheon.NewZoo(zscale, 1)
	s := pantheon.NewSchemes(zoo)
	cond := trace.Condition{BandwidthMbps: 3, LatencyMs: 30, QueuePkts: 200, LossRate: 0}
	thr := pantheon.RunScheme(s.MOCCAlgorithm("mocc-thr", objective.ThroughputPref), cond, 300, 7)
	lat := pantheon.RunScheme(s.MOCCAlgorithm("mocc-lat", objective.LatencyPref), cond, 300, 7)
	bal := pantheon.RunScheme(s.MOCCAlgorithm("mocc-bal", objective.BalancePref), cond, 300, 7)
	fmt.Println("trained+adapted in", time.Since(start).Round(time.Second))
	fmt.Printf("thr policy: util %.3f latRatio %.3f loss %.4f\n", thr.Utilization, thr.LatencyRatio, thr.LossRate)
	fmt.Printf("lat policy: util %.3f latRatio %.3f loss %.4f\n", lat.Utilization, lat.LatencyRatio, lat.LossRate)
	fmt.Printf("bal policy: util %.3f latRatio %.3f loss %.4f\n", bal.Utilization, bal.LatencyRatio, bal.LossRate)
}
