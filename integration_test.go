package mocc_test

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"mocc"
	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/datapath"
	"mocc/internal/netsim"
	"mocc/internal/nn"
	"mocc/internal/objective"
	"mocc/internal/trace"
)

// TestEndToEndTrainSaveLoadDeploy exercises the full product pipeline:
// offline training via the public API, model persistence, reload, and
// deployment of the loaded model as a flow in the packet-level simulator
// alongside a TCP competitor.
func TestEndToEndTrainSaveLoadDeploy(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	opts := mocc.QuickTraining()
	opts.Omega = 3
	opts.BootstrapIters = 4
	opts.BootstrapCycles = 1
	opts.TraverseCycles = 0
	lib, err := mocc.Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := lib.SaveModel(path); err != nil {
		t.Fatal(err)
	}

	// Reload through the internal layer and deploy in netsim.
	model := core.NewModel(core.HistoryLen, 0)
	snap, err := nn.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Restore(snap); err != nil {
		t.Fatal(err)
	}

	link := netsim.LinkConfig{
		Capacity:  trace.Constant(1000),
		OWD:       0.020,
		QueuePkts: 80,
	}
	n := netsim.NewNetwork(link, 1)
	moccFlow := n.AddFlow(netsim.FlowConfig{
		Alg:  model.AlgorithmFor("mocc", objective.ThroughputPref),
		Seed: 1,
	})
	cubicFlow := n.AddFlow(netsim.FlowConfig{Alg: cc.NewCubic(), Seed: 2})
	n.Run(30)

	if moccFlow.DeliveredTotal == 0 {
		t.Fatal("deployed MOCC flow delivered nothing")
	}
	if cubicFlow.DeliveredTotal == 0 {
		t.Fatal("cubic competitor delivered nothing")
	}
	// Neither flow may starve (the deployment guards guarantee this).
	share := float64(moccFlow.DeliveredTotal) /
		float64(moccFlow.DeliveredTotal+cubicFlow.DeliveredTotal)
	if share < 0.02 || share > 0.98 {
		t.Errorf("pathological share %v for deployed MOCC flow", share)
	}
}

// TestEndToEndUDPDatapath runs a trained policy over the real UDP loopback
// datapath — the user-space deployment of §5 outside any simulator.
func TestEndToEndUDPDatapath(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	model := core.NewModel(core.HistoryLen, 1) // untrained weights are fine:
	// the datapath contract (reports in, rates out) is what is under test.
	alg := model.AlgorithmFor("mocc-udp", objective.RTCPref)

	recv, err := datapath.StartReceiver("127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	stats, err := datapath.RunTransfer(datapath.TransferConfig{
		Addr:     recv.Addr(),
		Alg:      alg,
		Duration: 400 * time.Millisecond,
		MI:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent == 0 || stats.Acked == 0 {
		t.Fatalf("UDP transfer moved no data: %+v", stats)
	}
	for _, r := range stats.Reports {
		if math.IsNaN(r.SendRate) || r.SendRate < 0 {
			t.Fatalf("bad report rate %v", r.SendRate)
		}
	}
}

// TestProfileToLibraryFlow maps application-level requirements (§7) onto
// weights and registers them through the public API.
func TestProfileToLibraryFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	opts := mocc.QuickTraining()
	opts.Omega = 3
	opts.BootstrapIters = 2
	opts.BootstrapCycles = 1
	opts.TraverseCycles = 0
	lib, err := mocc.Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, profile := range objective.CommonProfiles() {
		w, err := profile.Weights()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		app, err := lib.Register(mocc.Weights{Thr: w.Thr, Lat: w.Lat, Loss: w.Loss})
		if err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		rate, err := lib.GetSendingRate(app)
		if err != nil || rate <= 0 {
			t.Fatalf("%s: rate %v, err %v", name, rate, err)
		}
	}
}
