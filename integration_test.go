package mocc_test

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"mocc"
	"mocc/internal/cc"
	"mocc/internal/core"
	"mocc/internal/netsim"
	"mocc/internal/nn"
	"mocc/internal/objective"
	"mocc/internal/trace"
	"mocc/transport"
)

// quickLib trains a scaled-down library for integration tests.
func quickLib(t *testing.T) *mocc.Library {
	t.Helper()
	opts := mocc.QuickTraining()
	opts.Omega = 3
	opts.BootstrapIters = 4
	opts.BootstrapCycles = 1
	opts.TraverseCycles = 0
	lib, err := mocc.Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestEndToEndTrainSaveLoadDeploy exercises the full product pipeline:
// offline training via the public API, model persistence, reload, and
// deployment of the loaded model as a flow in the packet-level simulator
// alongside a TCP competitor.
func TestEndToEndTrainSaveLoadDeploy(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	lib := quickLib(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := lib.SaveModel(path); err != nil {
		t.Fatal(err)
	}

	// Reload through the internal layer and deploy in netsim.
	model := core.NewModel(core.HistoryLen, 0)
	snap, err := nn.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Restore(snap); err != nil {
		t.Fatal(err)
	}

	link := netsim.LinkConfig{
		Capacity:  trace.Constant(1000),
		OWD:       0.020,
		QueuePkts: 80,
	}
	n := netsim.NewNetwork(link, 1)
	moccFlow := n.AddFlow(netsim.FlowConfig{
		Alg:  model.AlgorithmFor("mocc", objective.ThroughputPref),
		Seed: 1,
	})
	cubicFlow := n.AddFlow(netsim.FlowConfig{Alg: cc.NewCubic(), Seed: 2})
	n.Run(30)

	if moccFlow.DeliveredTotal == 0 {
		t.Fatal("deployed MOCC flow delivered nothing")
	}
	if cubicFlow.DeliveredTotal == 0 {
		t.Fatal("cubic competitor delivered nothing")
	}
	// Neither flow may starve (the deployment guards guarantee this).
	share := float64(moccFlow.DeliveredTotal) /
		float64(moccFlow.DeliveredTotal+cubicFlow.DeliveredTotal)
	if share < 0.02 || share > 0.98 {
		t.Errorf("pathological share %v for deployed MOCC flow", share)
	}
}

// TestEndToEndUDPDatapath hosts a registered application handle over the
// public transport binding — the user-space deployment of §5 on a real
// loopback socket, driven entirely through the v2 surface: Library →
// Register → transport.Send → App.Stats.
func TestEndToEndUDPDatapath(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	lib := quickLib(t)
	app, err := lib.Register(mocc.RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	recv, err := transport.Listen("127.0.0.1:0", transport.ReceiverConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	stats, err := transport.Send(recv.Addr(), app, 400*time.Millisecond, transport.Config{
		MI: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent == 0 || stats.Acked == 0 {
		t.Fatalf("UDP transfer moved no data: %+v", stats)
	}
	if recv.Received() == 0 {
		t.Fatal("receiver accepted no packets")
	}

	s := app.Stats()
	if s.Reports == 0 || int(s.Reports) != stats.Intervals {
		t.Fatalf("telemetry out of sync: app reports %d, transport intervals %d", s.Reports, stats.Intervals)
	}
	if s.PacketsAcked == 0 {
		t.Fatalf("app telemetry saw no deliveries: %+v", s)
	}
	if math.IsNaN(s.Rate) || s.Rate <= 0 {
		t.Fatalf("bad final rate %v", s.Rate)
	}
}

// TestProfileToLibraryFlow maps application-level requirements (§7) onto
// weights and registers them through the public API.
func TestProfileToLibraryFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline in -short mode")
	}
	opts := mocc.QuickTraining()
	opts.Omega = 3
	opts.BootstrapIters = 2
	opts.BootstrapCycles = 1
	opts.TraverseCycles = 0
	lib, err := mocc.Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, profile := range objective.CommonProfiles() {
		w, err := profile.Weights()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		app, err := lib.Register(mocc.Weights{Thr: w.Thr, Lat: w.Lat, Loss: w.Loss})
		if err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		if rate := app.Rate(); rate <= 0 {
			t.Fatalf("%s: rate %v", name, rate)
		}
	}
}
