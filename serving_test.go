package mocc

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// servingStatus varies the reported interval deterministically per (app,
// round) so bit-identity comparisons exercise a spread of observations.
func servingStatus(app, round int) Status {
	sent := 40.0 + float64((app*7+round*3)%20)
	lost := float64((app + round) % 3)
	return steadyStatus(sent, sent-lost, lost, time.Duration(40+(app*5+round)%30)*time.Millisecond)
}

// perturbedClone deep-copies the model and shifts every actor parameter, so
// published generations are distinguishable bit-wise.
func perturbedClone(m *Model, delta float64) *Model {
	m.m.RLockParams()
	c := m.m.Clone()
	m.m.RUnlockParams()
	for _, p := range c.ActorParams() {
		for i := range p.Value {
			p.Value[i] += delta
		}
	}
	return &Model{m: c}
}

// TestServingBitIdentical is the tentpole determinism pin at the public
// surface: a serving library (concurrent handles, coalesced batched
// inference) must publish bit-identical rate sequences to a plain library
// driving the same model with private single-sample views.
func TestServingBitIdentical(t *testing.T) {
	model := sharedLibrary(t).Model()
	servingLib, err := New(model, WithServing(ServingOptions{Shards: 4, MaxBatch: 16}), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer servingLib.Close()
	baseLib, err := New(model, WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}

	const apps, rounds = 24, 40
	prefs := []Weights{ThroughputPreference, LatencyPreference, RTCPreference, BalancedPreference}

	// Serving library: all apps report concurrently; coalescing is free to
	// mix their requests into shared batches.
	servingRates := make([][]float64, apps)
	var wg sync.WaitGroup
	for a := 0; a < apps; a++ {
		app, err := servingLib.Register(prefs[a%len(prefs)])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(a int, app *App) {
			defer wg.Done()
			rates := make([]float64, rounds)
			for r := 0; r < rounds; r++ {
				rate, err := app.Report(servingStatus(a, r))
				if err != nil {
					t.Errorf("app %d round %d: %v", a, r, err)
					return
				}
				rates[r] = rate
			}
			servingRates[a] = rates
		}(a, app)
	}
	wg.Wait()

	// Baseline library: same registration order (same handle IDs, same
	// controller seeds), driven sequentially.
	baseApps := make([]*App, apps)
	for a := 0; a < apps; a++ {
		app, err := baseLib.Register(prefs[a%len(prefs)])
		if err != nil {
			t.Fatal(err)
		}
		baseApps[a] = app
	}
	for a := 0; a < apps; a++ {
		for r := 0; r < rounds; r++ {
			want, err := baseApps[a].Report(servingStatus(a, r))
			if err != nil {
				t.Fatal(err)
			}
			if servingRates[a][r] != want {
				t.Fatalf("app %d round %d: serving rate %v, single-sample rate %v", a, r, servingRates[a][r], want)
			}
		}
	}

	st := servingLib.ServingStats()
	if !st.Enabled || st.Reports != apps*rounds || st.Batches == 0 {
		t.Fatalf("implausible serving stats: %+v", st)
	}
}

// TestServingHotSwapLive publishes new model generations while registered
// apps keep reporting: every Report must keep succeeding with a finite
// rate, the epoch must advance, and publishing a foreign model must sync
// the library model so SaveModel/OnlineAdapt see the served generation.
func TestServingHotSwapLive(t *testing.T) {
	model := sharedLibrary(t).Model()
	lib, err := New(model, WithServing(ServingOptions{Shards: 2, MaxBatch: 8}), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()

	const apps = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for a := 0; a < apps; a++ {
		app, err := lib.Register(RTCPreference)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(a int, app *App) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				rate, err := app.Report(servingStatus(a, r))
				if err != nil {
					t.Errorf("app %d: %v", a, err)
					return
				}
				if math.IsNaN(rate) || rate <= 0 {
					t.Errorf("app %d: rate %v during hot swap", a, rate)
					return
				}
			}
		}(a, app)
	}

	const publishes = 5
	var last *Model
	for g := 1; g <= publishes; g++ {
		last = perturbedClone(model, 1e-4*float64(g))
		seq, err := lib.Publish(last)
		if err != nil {
			t.Fatalf("publish %d: %v", g, err)
		}
		if seq != uint64(g) {
			t.Fatalf("publish %d: epoch %d", g, seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if lib.Epoch() != publishes {
		t.Fatalf("Epoch = %d, want %d", lib.Epoch(), publishes)
	}
	// Foreign publish synced the library model: spot-check a parameter.
	want := last.m.ActorParams()[0].Value[0]
	if got := lib.model.ActorParams()[0].Value[0]; got != want {
		t.Fatalf("library model not synced to published generation: %v vs %v", got, want)
	}
	if st := lib.ServingStats(); st.Epoch != publishes || st.Swaps == 0 {
		t.Fatalf("swap stats not recorded: %+v", st)
	}
}

// TestPublishValidation covers the error paths: publishing without serving,
// publishing nil, and publishing a NaN-poisoned model.
func TestPublishValidation(t *testing.T) {
	lib := sharedLibrary(t)
	if _, err := lib.Publish(lib.Model()); err == nil {
		t.Fatal("Publish succeeded on a library built without serving")
	}

	model := lib.Model()
	slib, err := New(model, WithServing(ServingOptions{Shards: 1}), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer slib.Close()
	if _, err := slib.Publish(nil); err == nil {
		t.Fatal("Publish accepted a nil model")
	}
	bad := perturbedClone(model, 0)
	bad.m.ActorParams()[0].Value[0] = math.NaN()
	if _, err := slib.Publish(bad); err == nil {
		t.Fatal("Publish accepted a NaN-poisoned model")
	}
	if slib.Epoch() != 0 {
		t.Fatalf("rejected publish advanced the epoch to %d", slib.Epoch())
	}
}

// TestServingEvictionLogic drives the idle-eviction scan directly under a
// fake clock: handles idle past the TTL go, recently active ones stay.
func TestServingEvictionLogic(t *testing.T) {
	var nanos atomic.Int64
	nanos.Store(time.Hour.Nanoseconds())
	clock := func() time.Time { return time.Unix(0, nanos.Load()) }

	model := sharedLibrary(t).Model()
	// IdleTTL deliberately unset: the janitor goroutine stays out of the
	// way and the scan runs only when the test calls it.
	lib, err := New(model, WithServing(ServingOptions{Shards: 1}), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	lib.idleTTL = time.Hour

	active, err := lib.Register(ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := lib.Register(LatencyPreference)
	if err != nil {
		t.Fatal(err)
	}

	nanos.Add((30 * time.Minute).Nanoseconds())
	if _, err := active.Report(steadyStatus(50, 50, 0, 40*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if n := lib.evictIdle(); n != 0 {
		t.Fatalf("evicted %d handles before any TTL expired", n)
	}

	// 70 minutes after registration: idle (never reported) is past the
	// 1h TTL, active reported 40 minutes ago and survives.
	nanos.Add((40 * time.Minute).Nanoseconds())
	if n := lib.evictIdle(); n != 1 {
		t.Fatalf("evictIdle = %d, want 1", n)
	}
	if _, err := idle.Report(steadyStatus(50, 50, 0, 40*time.Millisecond)); err == nil {
		t.Fatal("evicted handle still accepts reports")
	}
	if _, err := active.Report(steadyStatus(50, 50, 0, 40*time.Millisecond)); err != nil {
		t.Fatalf("active handle was evicted: %v", err)
	}
	if st := lib.ServingStats(); st.Evicted != 1 {
		t.Fatalf("ServingStats.Evicted = %d, want 1", st.Evicted)
	}
	if lib.Apps() != 1 {
		t.Fatalf("Apps = %d, want 1", lib.Apps())
	}
}

// TestServingJanitor proves the background janitor actually runs: with a
// real clock and a short TTL, an abandoned handle disappears on its own.
func TestServingJanitor(t *testing.T) {
	model := sharedLibrary(t).Model()
	lib, err := New(model, WithServing(ServingOptions{Shards: 1, IdleTTL: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	if _, err := lib.Register(BalancedPreference); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for lib.Apps() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never evicted the idle handle (Apps = %d)", lib.Apps())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := lib.ServingStats(); st.Evicted != 1 {
		t.Fatalf("ServingStats.Evicted = %d, want 1", st.Evicted)
	}
}

// TestFleetStats checks the fleet aggregation arithmetic over two handles
// with known telemetry.
func TestFleetStats(t *testing.T) {
	model := sharedLibrary(t).Model()
	lib, err := New(model, WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := lib.Register(ThroughputPreference)
	b, _ := lib.Register(LatencyPreference)
	for i := 0; i < 4; i++ {
		if _, err := a.Report(steadyStatus(50, 48, 2, 40*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Report(steadyStatus(100, 99, 1, 80*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	f := lib.FleetStats()
	if f.Apps != 2 || f.Reports != 5 {
		t.Fatalf("Apps/Reports = %d/%d, want 2/5", f.Apps, f.Reports)
	}
	if f.PacketsSent != 300 || f.PacketsAcked != 291 || f.PacketsLost != 9 {
		t.Fatalf("packet totals %v/%v/%v", f.PacketsSent, f.PacketsAcked, f.PacketsLost)
	}
	if want := 9.0 / 300; f.LossRate != want {
		t.Fatalf("LossRate = %v, want %v", f.LossRate, want)
	}
	if f.MinRTT != 40*time.Millisecond {
		t.Fatalf("MinRTT = %v", f.MinRTT)
	}
	if f.Duration != 5*40*time.Millisecond {
		t.Fatalf("Duration = %v", f.Duration)
	}
	// steadyStatus reports equal-length intervals, so the duration-weighted
	// fleet AvgRTT of four 40ms-RTT intervals and one 80ms-RTT interval is
	// their plain mean, 48ms.
	if want := 48 * time.Millisecond; f.AvgRTT != want {
		t.Fatalf("AvgRTT = %v, want %v", f.AvgRTT, want)
	}
	if f.Throughput <= 0 || f.MeanRate <= 0 {
		t.Fatalf("non-positive aggregates: %+v", f)
	}
}

// TestServingClose pins graceful shutdown: Close drains, is idempotent, and
// an outstanding handle degrades to the safe-mode fallback instead of
// failing — the learned path is gone but the app keeps getting finite rates.
func TestServingClose(t *testing.T) {
	model := sharedLibrary(t).Model()
	lib, err := New(model, WithServing(ServingOptions{Shards: 1}))
	if err != nil {
		t.Fatal(err)
	}
	app, err := lib.Register(RTCPreference)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Report(steadyStatus(50, 50, 0, 40*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	lib.Close()
	lib.Close() // idempotent

	for i := 0; i < 4; i++ {
		rate, err := app.Report(steadyStatus(50, 50, 0, 40*time.Millisecond))
		if err != nil {
			t.Fatalf("report %d after Close: %v", i, err)
		}
		if math.IsNaN(rate) || rate <= 0 {
			t.Fatalf("report %d after Close: rate %v", i, rate)
		}
	}
	if st := app.Stats(); !st.FallbackActive || st.Faults == 0 {
		t.Fatalf("handle did not degrade to fallback after Close: %+v", st)
	}
}

// TestServingChurnRace is the ISSUE's fleet-scale race workout: churn
// Register/Report/Stats/Unregister across 10k handles through the sharded
// engine while epoch hot-swaps publish concurrently and fleet/serving stats
// are polled. Run under -race via make test-race.
func TestServingChurnRace(t *testing.T) {
	model := sharedLibrary(t).Model()
	lib, err := New(model, WithServing(ServingOptions{Shards: 4, MaxBatch: 32}), WithoutAdaptation())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()

	handles := 10000
	if testing.Short() {
		handles = 1000
	}
	const workers = 16
	perWorker := handles / workers
	prefs := []Weights{ThroughputPreference, LatencyPreference, RTCPreference, BalancedPreference}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for h := 0; h < perWorker; h++ {
				app, err := lib.Register(prefs[(w+h)%len(prefs)])
				if err != nil {
					t.Error(err)
					return
				}
				for r := 0; r < 3; r++ {
					rate, err := app.Report(servingStatus(w, h*3+r))
					if err != nil {
						t.Error(err)
						return
					}
					if math.IsNaN(rate) || rate <= 0 {
						t.Errorf("worker %d handle %d: rate %v", w, h, rate)
						return
					}
				}
				_ = app.Stats()
				if err := app.Unregister(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() { // epoch hot-swap storm
		defer aux.Done()
		for g := 1; ; g++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := lib.Publish(perturbedClone(model, 1e-5*float64(g%7))); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	aux.Add(1)
	go func() { // stats pollers race the churn
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = lib.FleetStats()
			_ = lib.ServingStats()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	aux.Wait()

	st := lib.ServingStats()
	if st.Reports != uint64(workers*perWorker*3) {
		t.Fatalf("ServingStats.Reports = %d, want %d", st.Reports, workers*perWorker*3)
	}
	if st.Epoch == 0 {
		t.Fatal("no epoch ever published during the churn")
	}
	if lib.Apps() != 0 {
		t.Fatalf("Apps = %d after full churn", lib.Apps())
	}
}

// TestFleetStatsEvictionChurn hammers the fleet-telemetry surface while the
// idle janitor races handle registration: workers continuously register,
// report, and abandon handles, an evictor advances a fake clock past the TTL
// and scans, and pollers read FleetStats/ServingStats throughout. Gauges
// must never go negative, the eviction counter must be monotonic, and an
// evicted worker must always be able to lazily re-register. Run under
// -race, this also pins the locking of every surface involved.
func TestFleetStatsEvictionChurn(t *testing.T) {
	var nanos atomic.Int64
	nanos.Store(time.Hour.Nanoseconds())
	clock := func() time.Time { return time.Unix(0, nanos.Load()) }

	model := sharedLibrary(t).Model()
	// IdleTTL unset so the janitor goroutine stays out; the evictor below
	// runs the same scan deterministically under the fake clock.
	lib, err := New(model, WithServing(ServingOptions{Shards: 2}), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	lib.idleTTL = time.Minute

	var (
		stop       = make(chan struct{})
		wg         sync.WaitGroup
		reRegister atomic.Int64 // lazy re-registrations after eviction
		failMu     sync.Mutex
		failure    string
	)
	fail := func(msg string) {
		failMu.Lock()
		if failure == "" {
			failure = msg
		}
		failMu.Unlock()
	}

	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var app *App
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				if app == nil {
					a, err := lib.Register(BalancedPreference)
					if err != nil {
						fail("register: " + err.Error())
						return
					}
					app = a
					if round > 0 {
						reRegister.Add(1)
					}
				}
				if _, err := app.Report(servingStatus(w, round)); err != nil {
					// Evicted underneath us mid-report: the contract is
					// lazy re-registration on the next pass.
					app = nil
				}
				if round%13 == 12 {
					app = nil // abandon; the evictor collects it
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			nanos.Add((2 * time.Minute).Nanoseconds())
			lib.evictIdle()
		}
	}()

	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEvicted int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := lib.FleetStats()
				if f.Apps < 0 || f.Queued < 0 || f.Reports < 0 || f.FallbackActive < 0 {
					fail("negative FleetStats gauge")
				}
				if f.Evicted < lastEvicted {
					fail("Evicted went backwards")
				}
				lastEvicted = f.Evicted
				s := lib.ServingStats()
				if s.Queued < 0 || s.Evicted < 0 {
					fail("negative ServingStats gauge")
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failure != "" {
		t.Fatal(failure)
	}
	if reRegister.Load() == 0 {
		t.Fatal("churn never exercised lazy re-registration")
	}
	if lib.ServingStats().Evicted == 0 {
		t.Fatal("churn never evicted a handle")
	}
	// The library must still be fully serviceable after the storm.
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Report(steadyStatus(50, 50, 0, 40*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if q := lib.ServingStats().Queued; q != 0 {
		t.Fatalf("Queued = %d at quiescence, want 0", q)
	}
}
