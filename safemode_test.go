package mocc

import (
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mocc/internal/cc"
	"mocc/internal/core"
)

// guardedLibrary builds a Library over the shared trained weights (deep
// copy, so OnlineAdapt tests cannot poison the shared model) with the
// given options.
func guardedLibrary(t *testing.T, opts ...Option) *Library {
	t.Helper()
	src := sharedLibrary(t)
	src.model.RLockParams()
	snap := src.model.Snapshot()
	src.model.RUnlockParams()
	m := core.NewModel(core.HistoryLen, 0)
	if err := m.Restore(snap); err != nil {
		t.Fatalf("copying model: %v", err)
	}
	lib, err := New(&Model{m: m}, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return lib
}

// nanWindow poisons policy decisions with index in [from, to) with NaN.
func nanWindow(from, to int) func(float64) float64 {
	var calls atomic.Int64
	return func(act float64) float64 {
		if i := int(calls.Add(1)) - 1; i >= from && i < to {
			return math.NaN()
		}
		return act
	}
}

// drive runs n Report intervals, asserting every returned rate is inside
// the pacing envelope, and returns the rate trace.
func drive(t *testing.T, app *App, n int) []float64 {
	t.Helper()
	rates := make([]float64, 0, n)
	rate := app.Rate()
	for i := 0; i < n; i++ {
		sent := rate * 0.04
		var err error
		rate, err = app.Report(steadyStatus(sent, sent, 0, 40*time.Millisecond))
		if err != nil {
			t.Fatalf("Report %d: %v", i, err)
		}
		if !cc.ValidRate(rate) {
			t.Fatalf("Report %d published rate %v outside [%v, %v]",
				i, rate, float64(cc.MinPacingRate), float64(cc.MaxPacingRate))
		}
		rates = append(rates, rate)
	}
	return rates
}

func TestSafeModeTripsOnNaNWindowAndRecovers(t *testing.T) {
	lib := guardedLibrary(t,
		WithoutAdaptation(),
		WithInferenceFault(nanWindow(5, 9)),
		WithSafeMode(SafeModeConfig{TripAfter: 2, RecoverAfter: 3}),
	)
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	drive(t, app, 30)
	st := app.Stats()
	if st.Fallbacks < 1 {
		t.Fatalf("Fallbacks = %d, want >= 1 after the NaN window", st.Fallbacks)
	}
	if st.FallbackIntervals == 0 {
		t.Fatal("FallbackIntervals = 0, want fallback-served intervals recorded")
	}
	if st.Faults == 0 || !strings.Contains(st.LastFault, "non-finite") {
		t.Fatalf("Faults=%d LastFault=%q, want non-finite action faults", st.Faults, st.LastFault)
	}
	if st.LastFaultAt.IsZero() {
		t.Fatal("LastFaultAt not stamped")
	}
	// The window ended long ago; RecoverAfter clean shadows must have
	// returned control to the learned path.
	if st.FallbackActive {
		t.Fatal("still degraded 20+ clean intervals after the fault cleared")
	}
}

func TestSafeModeStallDetection(t *testing.T) {
	var calls atomic.Int64
	stall := func(act float64) float64 {
		if i := int(calls.Add(1)) - 1; i >= 2 && i < 4 {
			time.Sleep(20 * time.Millisecond)
		}
		return act
	}
	lib := guardedLibrary(t,
		WithoutAdaptation(),
		WithInferenceFault(stall),
		WithSafeMode(SafeModeConfig{TripAfter: 1, RecoverAfter: 2, StallThreshold: 5 * time.Millisecond}),
	)
	app, err := lib.Register(LatencyPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	drive(t, app, 10)
	st := app.Stats()
	if st.Fallbacks < 1 || !strings.Contains(st.LastFault, "stalled") {
		t.Fatalf("Fallbacks=%d LastFault=%q, want a stalled-inference trip", st.Fallbacks, st.LastFault)
	}
	if st.FallbackActive {
		t.Fatal("still degraded after the stall window cleared")
	}
}

func TestSafeModeRecoversFromInferencePanic(t *testing.T) {
	var calls atomic.Int64
	boom := func(act float64) float64 {
		if i := int(calls.Add(1)) - 1; i >= 1 && i < 4 {
			panic("model exploded")
		}
		return act
	}
	lib := guardedLibrary(t,
		WithoutAdaptation(),
		WithInferenceFault(boom),
		WithSafeMode(SafeModeConfig{TripAfter: 1, RecoverAfter: 2}),
	)
	app, err := lib.Register(ThroughputPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	// drive fails the test if any Report panics or publishes an invalid
	// rate; the panics must be absorbed as pathological decisions.
	drive(t, app, 12)
	st := app.Stats()
	if st.Fallbacks < 1 || !strings.Contains(st.LastFault, "panic") {
		t.Fatalf("Fallbacks=%d LastFault=%q, want an inference-panic trip", st.Fallbacks, st.LastFault)
	}
}

func TestWithoutSafeModeDisablesGuard(t *testing.T) {
	lib := guardedLibrary(t,
		WithoutAdaptation(),
		WithoutSafeMode(),
		WithInferenceFault(nanWindow(0, 1<<30)),
	)
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()

	// Without the guard the NaN actions reach the raw controller (whose
	// clamped rate stays finite); no fallback telemetry must appear.
	rate := app.Rate()
	for i := 0; i < 5; i++ {
		sent := rate * 0.04
		var err error
		rate, err = app.Report(steadyStatus(sent, sent, 0, 40*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
	}
	st := app.Stats()
	if st.Fallbacks != 0 || st.FallbackIntervals != 0 || st.Faults != 0 || st.LastFault != "" {
		t.Fatalf("guard telemetry populated with safe mode off: %+v", st)
	}
}

func TestSafeModeDefaultsOn(t *testing.T) {
	lib := guardedLibrary(t, WithoutAdaptation(), WithInferenceFault(nanWindow(0, 4)))
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()
	drive(t, app, 10)
	if st := app.Stats(); st.Fallbacks < 1 {
		t.Fatalf("default-configured library did not trip on a NaN burst: %+v", st)
	}
}

func TestOnlineAdaptRestoresFiniteModelOnDivergence(t *testing.T) {
	lib := guardedLibrary(t)
	lib.adaptHook = func(iter int) {
		if iter == 1 {
			lib.model.AllParams()[0].Value[0] = math.NaN()
		}
	}
	_, err := lib.OnlineAdapt(BalancedPreference, 3)
	if err == nil {
		t.Fatal("OnlineAdapt succeeded despite a poisoned parameter")
	}
	if !strings.Contains(err.Error(), "diverged at iteration") {
		t.Fatalf("error %q does not describe the divergence", err)
	}
	lib.model.RLockParams()
	ferr := lib.model.CheckFinite()
	lib.model.RUnlockParams()
	if ferr != nil {
		t.Fatalf("model left non-finite after rollback: %v", ferr)
	}
	// The restored model must still serve.
	app, err := lib.Register(BalancedPreference)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Unregister()
	drive(t, app, 3)
}

func TestOnlineAdaptRefusesCorruptedModel(t *testing.T) {
	lib := guardedLibrary(t)
	lib.model.LockParams()
	lib.model.AllParams()[0].Value[0] = math.Inf(1)
	lib.model.UnlockParams()
	if _, err := lib.OnlineAdapt(BalancedPreference, 1); err == nil {
		t.Fatal("OnlineAdapt accepted a model that is already non-finite")
	}
}

func TestLoadModelFileRejectsCorruptedSnapshot(t *testing.T) {
	_, err := LoadModelFile(filepath.Join("testdata", "corrupt-model.json"))
	if err == nil {
		t.Fatal("LoadModelFile accepted a snapshot containing NaN")
	}
	if !strings.Contains(err.Error(), "corrupted") || !strings.Contains(err.Error(), "linear_32x16_w") {
		t.Fatalf("error %q should flag corruption and name the offending tensor", err)
	}
}

func TestSaveLoadRejectsPoisonedLibraryModel(t *testing.T) {
	lib := guardedLibrary(t, WithoutAdaptation())
	lib.model.LockParams()
	lib.model.AllParams()[2].Value[1] = math.NaN()
	lib.model.UnlockParams()

	path := filepath.Join(t.TempDir(), "poisoned.json")
	if err := lib.SaveModel(path); err != nil {
		t.Fatalf("SaveModel must still snapshot a diverged model for post-mortem: %v", err)
	}
	if _, err := LoadModelFile(path); err == nil {
		t.Fatal("LoadModelFile deployed a poisoned snapshot")
	}
}
