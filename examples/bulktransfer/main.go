// Bulktransfer reproduces the §6.3 bulk-data scenario (Figure 10): repeated
// file transfers over a link with 0.5% random loss, measuring the
// flow-completion-time distribution per scheme. MOCC runs with an almost
// pure throughput preference (the paper's greedy <1, 0, 0>).
//
//	go run ./examples/bulktransfer
package main

import (
	"fmt"
	"log"
	"os"

	"mocc/internal/apps"
	"mocc/internal/pantheon"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training models (quick scale)...")
	zoo := pantheon.NewZoo(pantheon.Quick, 1)
	schemes := pantheon.NewSchemes(zoo)

	cfg := apps.DefaultBulkConfig()
	fmt.Printf("transferring %.0f MB x %d over a %.0f Mbps link with %.1f%% loss...\n",
		cfg.FileMBytes, cfg.Transfers, cfg.LinkMbps, cfg.LossRate*100)
	res := pantheon.RunFig10(schemes, cfg)

	t := res.Table()
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nindividual completion times (s):")
	for _, s := range res.Results {
		fmt.Printf("  %-8s", s.Scheme)
		for _, fct := range s.FCTs {
			fmt.Printf(" %6.2f", fct)
		}
		fmt.Println()
	}
}
