// Scenario specs: load declarative scenario files — a hand-written capacity
// schedule and a replayed Mahimahi trace — run them on the packet-level
// simulator, and print per-flow App.Stats-style results. No Go code changes
// are needed to describe a new network condition: edit the JSON (or
// generate one with `mocc-scen describe -family cellular -seed 42`) and
// re-run.
//
//	go run ./examples/scenarios            # runs the two bundled specs
//	go run ./examples/scenarios my.json    # runs your own
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"mocc/scenario"
)

// defaultSpecs resolves the bundled spec files relative to this source
// file, so `go run ./examples/scenarios` works from any directory.
func defaultSpecs() []string {
	dir := filepath.Join("examples", "scenarios") // fallback: repo root cwd
	if _, file, _, ok := runtime.Caller(0); ok {
		dir = filepath.Dir(file)
	}
	return []string{
		filepath.Join(dir, "cellular.json"),
		filepath.Join(dir, "trace-replay.json"),
	}
}

func main() {
	log.SetFlags(0)
	specs := os.Args[1:]
	if len(specs) == 0 {
		specs = defaultSpecs()
	}
	for _, path := range specs {
		spec, err := scenario.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		res, err := scenario.Run(spec, scenario.RunOptions{
			CompileOptions: scenario.CompileOptions{BaseDir: filepath.Dir(path)},
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s ===\n%s\n", spec.Name, spec.Description)
		for _, fr := range append(res.Flows, res.Cross...) {
			status := ""
			if fr.Completed {
				status = fmt.Sprintf("  (finished at %.2fs)", fr.CompletionSec)
			}
			fmt.Printf("  %-14s %-11s %8.3f Mbps  rtt %6.1f ms  loss %5.2f%%  %d/%d delivered%s\n",
				fr.Label, fr.Scheme, fr.ThroughputMbps, fr.AvgRTTms,
				fr.LossRate*100, fr.Delivered, fr.Sent, status)
		}
		fmt.Println()
	}
}
