// Rtc reproduces the §6.3 real-time-communication scenario (Figure 9): an
// application-limited call shares a link with background traffic and the
// receiver-side inter-packet delay decides call quality. MOCC runs with the
// RTC preference <0.4, 0.5, 0.1> — throughput still matters, but lag kills
// calls.
//
//	go run ./examples/rtc
package main

import (
	"fmt"
	"log"
	"os"

	"mocc/internal/apps"
	"mocc/internal/pantheon"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training models (quick scale)...")
	zoo := pantheon.NewZoo(pantheon.Quick, 1)
	schemes := pantheon.NewSchemes(zoo)

	res := pantheon.RunFig9(schemes, apps.DefaultRTCConfig())
	t := res.Table()
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ninter-packet delay over time (first 10 seconds, ms):")
	for _, s := range res.Sessions {
		n := len(s.InterPacketMs)
		if n > 10 {
			n = 10
		}
		fmt.Printf("  %-8s", s.Scheme)
		for _, g := range s.InterPacketMs[:n] {
			fmt.Printf(" %5.1f", g)
		}
		fmt.Println()
	}
}
