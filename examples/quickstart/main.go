// Quickstart: train a MOCC model, register two applications with opposite
// preferences, and drive the §5 control loop (Register → ReportStatus →
// GetSendingRate) against a little in-process link model.
//
// The link model below stands in for *your* datapath: anything that can
// count sent/acked/lost packets and measure RTTs per interval can host MOCC.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mocc"
)

// link is a minimal fluid bottleneck: fixed capacity, drop-tail queue.
type link struct {
	capacityPps float64
	queuePkts   float64
	maxQueue    float64
	baseRTT     time.Duration
}

// transfer pushes `rate` pkts/s through the link for d and reports what a
// sender would observe.
func (l *link) transfer(rate float64, d time.Duration) mocc.Status {
	sec := d.Seconds()
	sent := rate * sec
	q1 := l.queuePkts + sent - l.capacityPps*sec
	lost := 0.0
	if q1 > l.maxQueue {
		lost = q1 - l.maxQueue
		q1 = l.maxQueue
	}
	if q1 < 0 {
		q1 = 0
	}
	delivered := sent - lost - (q1 - l.queuePkts)
	if delivered < 0 {
		delivered = 0
	}
	queueDelay := time.Duration((l.queuePkts + q1) / 2 / l.capacityPps * float64(time.Second))
	l.queuePkts = q1
	return mocc.Status{
		Duration:     d,
		PacketsSent:  sent,
		PacketsAcked: delivered,
		PacketsLost:  lost,
		AvgRTT:       l.baseRTT + queueDelay,
		MinRTT:       l.baseRTT,
	}
}

func main() {
	log.SetFlags(0)

	fmt.Println("training MOCC (quick scale, a few seconds)...")
	lib, err := mocc.Train(mocc.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}

	// One model, two applications, two different objectives.
	bulk, err := lib.Register(mocc.ThroughputPreference)
	if err != nil {
		log.Fatal(err)
	}
	call, err := lib.Register(mocc.RTCPreference)
	if err != nil {
		log.Fatal(err)
	}

	// Each app drives its own link (1000 pkts/s ≈ 12 Mbps at 1500 B).
	links := map[mocc.AppID]*link{
		bulk: {capacityPps: 1000, maxQueue: 200, baseRTT: 40 * time.Millisecond},
		call: {capacityPps: 1000, maxQueue: 200, baseRTT: 40 * time.Millisecond},
	}
	names := map[mocc.AppID]string{bulk: "bulk (thr-pref)", call: "call (rtc-pref)"}

	const mi = 40 * time.Millisecond
	fmt.Printf("%-18s %12s %12s %10s\n", "app", "rate (pps)", "thr (pps)", "rtt (ms)")
	for step := 1; step <= 150; step++ {
		for _, id := range []mocc.AppID{bulk, call} {
			rate, err := lib.GetSendingRate(id)
			if err != nil {
				log.Fatal(err)
			}
			st := links[id].transfer(rate, mi)
			if err := lib.ReportStatus(id, st); err != nil {
				log.Fatal(err)
			}
			if step%30 == 0 {
				fmt.Printf("%-18s %12.0f %12.0f %10.1f\n",
					names[id], rate, st.PacketsAcked/mi.Seconds(),
					float64(st.AvgRTT.Microseconds())/1000)
			}
		}
	}
	fmt.Println("\nsame model, two objectives: the throughput app pushes the")
	fmt.Println("queue for bandwidth, the call app backs off to keep RTT low.")
}
