// Quickstart: train a MOCC model, register two applications with opposite
// preferences, and drive the handle-based control loop (Register → Report)
// against a little in-process link model. Halfway through, the call app
// retunes its preference live with SetWeights — no re-registration — and
// the run ends with each handle's cumulative telemetry (App.Stats).
//
// The link model below stands in for *your* datapath: anything that can
// count sent/acked/lost packets and measure RTTs per interval can host MOCC.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mocc"
)

// link is a minimal fluid bottleneck: fixed capacity, drop-tail queue.
type link struct {
	capacityPps float64
	queuePkts   float64
	maxQueue    float64
	baseRTT     time.Duration
}

// transfer pushes `rate` pkts/s through the link for d and reports what a
// sender would observe.
func (l *link) transfer(rate float64, d time.Duration) mocc.Status {
	sec := d.Seconds()
	sent := rate * sec
	q1 := l.queuePkts + sent - l.capacityPps*sec
	lost := 0.0
	if q1 > l.maxQueue {
		lost = q1 - l.maxQueue
		q1 = l.maxQueue
	}
	if q1 < 0 {
		q1 = 0
	}
	delivered := sent - lost - (q1 - l.queuePkts)
	if delivered < 0 {
		delivered = 0
	}
	queueDelay := time.Duration((l.queuePkts + q1) / 2 / l.capacityPps * float64(time.Second))
	l.queuePkts = q1
	// A draining queue delivers packets sent in earlier intervals; fold
	// that carryover into the sent count so acked+lost never exceeds sent
	// within one report (the invariant App.Report validates).
	if delivered+lost > sent {
		sent = delivered + lost
	}
	return mocc.Status{
		Duration:     d,
		PacketsSent:  sent,
		PacketsAcked: delivered,
		PacketsLost:  lost,
		AvgRTT:       l.baseRTT + queueDelay,
		MinRTT:       l.baseRTT,
	}
}

func main() {
	log.SetFlags(0)

	fmt.Println("training MOCC (quick scale, a few seconds)...")
	lib, err := mocc.Train(mocc.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}

	// One model, two applications, two different objectives. Register
	// returns a handle; its Report call is the whole §5 loop.
	bulk, err := lib.Register(mocc.ThroughputPreference)
	if err != nil {
		log.Fatal(err)
	}
	call, err := lib.Register(mocc.RTCPreference)
	if err != nil {
		log.Fatal(err)
	}

	// Each app drives its own link (1000 pkts/s ≈ 12 Mbps at 1500 B).
	links := map[*mocc.App]*link{
		bulk: {capacityPps: 1000, maxQueue: 200, baseRTT: 40 * time.Millisecond},
		call: {capacityPps: 1000, maxQueue: 200, baseRTT: 40 * time.Millisecond},
	}
	names := map[*mocc.App]string{bulk: "bulk (thr-pref)", call: "call (rtc-pref)"}

	const mi = 40 * time.Millisecond
	fmt.Printf("%-18s %12s %12s %10s\n", "app", "rate (pps)", "thr (pps)", "rtt (ms)")
	for step := 1; step <= 150; step++ {
		if step == 75 {
			// The call ends and the same connection becomes a file sync:
			// retune the live handle instead of re-registering.
			if err := call.SetWeights(mocc.ThroughputPreference); err != nil {
				log.Fatal(err)
			}
			names[call] = "call (retuned)"
			fmt.Println("  -- call app retunes to the throughput preference (SetWeights) --")
		}
		for _, app := range []*mocc.App{bulk, call} {
			st := links[app].transfer(app.Rate(), mi)
			rate, err := app.Report(st)
			if err != nil {
				log.Fatal(err)
			}
			if step%30 == 0 {
				fmt.Printf("%-18s %12.0f %12.0f %10.1f\n",
					names[app], rate, st.PacketsAcked/mi.Seconds(),
					float64(st.AvgRTT.Microseconds())/1000)
			}
		}
	}

	fmt.Println("\nper-app telemetry (App.Stats):")
	for _, app := range []*mocc.App{bulk, call} {
		s := app.Stats()
		fmt.Printf("  %-18s reports %3d  thr %6.0f pps  loss %4.1f%%  avg rtt %5.1f ms\n",
			names[app], s.Reports, s.Throughput, s.LossRate*100,
			float64(s.AvgRTT.Microseconds())/1000)
	}
	fmt.Println("\nsame model, two objectives: the throughput app pushes the")
	fmt.Println("queue for bandwidth, the call app keeps RTT low until it")
	fmt.Println("retunes — live — into a second bulk flow.")
}
