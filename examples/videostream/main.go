// Videostream reproduces the §6.3 video-streaming scenario (Figure 8): an
// MPC-style ABR client streams chunks over a congested bottleneck, once per
// congestion-control scheme. MOCC runs with the throughput preference
// <0.8, 0.1, 0.1> because playback buffers absorb latency.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"os"

	"mocc/internal/apps"
	"mocc/internal/pantheon"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training models (quick scale)...")
	zoo := pantheon.NewZoo(pantheon.Quick, 1)
	schemes := pantheon.NewSchemes(zoo)

	cfg := apps.DefaultVideoConfig()
	res, err := pantheon.RunFig8(schemes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	t := res.Table()
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-scheme quality histograms (chunks per level 0..5):")
	for _, s := range res.Sessions {
		fmt.Printf("  %-8s %v\n", s.Scheme, s.ABR.QualityCounts)
	}
}
