// Adaptation walks through §6.2: a trained MOCC model meets an application
// with an unseen objective. The offline model serves it immediately (the
// preference sub-network interpolates), and a few online-adaptation
// iterations with requirement replay converge it the rest of the way —
// without forgetting the objectives that came before.
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"log"

	"mocc"
)

func main() {
	log.SetFlags(0)

	fmt.Println("offline training (quick scale)...")
	lib, err := mocc.Train(mocc.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}

	// An existing application: bulk-style throughput preference.
	if _, err := lib.Register(mocc.ThroughputPreference); err != nil {
		log.Fatal(err)
	}

	// A new application arrives with a requirement the model never
	// trained on: latency-leaning but loss-averse.
	unseen := mocc.Weights{Thr: 0.25, Lat: 0.55, Loss: 0.2}
	fmt.Printf("\nadapting online to unseen objective %+v...\n", unseen)
	curve, err := lib.OnlineAdapt(unseen, 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-iteration reward for the new objective:")
	for i, r := range curve {
		bar := ""
		for j := 0; j < int(r*40); j++ {
			bar += "#"
		}
		fmt.Printf("  iter %2d  %.3f  %s\n", i, r, bar)
	}

	fmt.Println("\nthe first iteration already earns most of the final reward:")
	fmt.Println("that head start is the transfer from the offline multi-")
	fmt.Println("objective model, and replay keeps the old app's policy intact.")
}
